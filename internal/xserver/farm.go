package xserver

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/xproto"
)

// The display farm: one listener, many virtual displays. A Farm hosts N
// independent sessions — each a full *Server with its own root window,
// resource tables and metrics registry — and routes every incoming
// connection to the session named by its AttachSession handshake
// (docs/farm.md). The paper assumed one user per display; the farm is
// the serving model for many: admission control caps the session count,
// per-session quotas (quota.go) bound what each tenant may allocate,
// and an idle sweeper evicts sessions nobody has spoken to. Because a
// session is a whole Server, eviction is Server.Close + the ordinary
// collect-then-destroy connection cleanup: there is no code path by
// which tearing down one tenant can touch another's windows.

// DefaultMaxSessions is the admission cap when FarmOptions leaves
// MaxSessions zero.
const DefaultMaxSessions = 64

// attachTimeout bounds how long the farm waits for a new connection's
// first frame. Shorter than the client's 10 s setup deadline so a
// refused or confused client reads a clean error, not a timeout.
const attachTimeout = 5 * time.Second

// FarmOptions configures NewFarm. The zero value hosts up to
// DefaultMaxSessions unlimited 1024×768 sessions with no idle eviction.
type FarmOptions struct {
	Width, Height int           // per-session screen size (default 1024×768)
	MaxSessions   int           // admission cap (default DefaultMaxSessions)
	Quota         Quota         // per-session quota; zero fields = unlimited
	IdleEvict     time.Duration // evict sessions idle this long; 0 disables
	SweepInterval time.Duration // sweeper period; 0 = IdleEvict/4, clamped to [10ms, 30s]
	Configure     func(*Server) // optional hook run on each new session's server
}

// Session is one virtual display hosted by a Farm.
type Session struct {
	name    string
	srv     *Server
	created time.Time

	// lastActive is the session's idle clock: unix nanos of the most
	// recent attach, detach or dispatched request (the session server
	// stamps it per request via setActivity).
	lastActive atomic.Int64
	// conns counts live client connections attached to the session.
	conns atomic.Int64
}

// Name returns the session's name (the AttachSession string).
func (sess *Session) Name() string { return sess.name }

// Server returns the session's display server, for per-tenant
// introspection (Metrics, QuotaUsage).
func (sess *Session) Server() *Server { return sess.srv }

// Farm is a multi-tenant session multiplexer over Server.
//
// Its one mutex guards only the session registry and is never held
// while calling into a session's server (creation aside, which takes no
// locks): eviction and Close collect victims under sessMu and destroy
// them after releasing it — the same collect-then-destroy discipline as
// cleanupConn — so sessMu forms its own single-element chain in the
// package lock order.
//
// lock-order: sessMu
type Farm struct {
	width, height int
	maxSessions   int
	quota         Quota
	idleEvict     time.Duration
	sweepEvery    time.Duration
	configure     func(*Server)

	// metrics is the aggregate registry: farm.* lifecycle counters plus
	// the rolled-up "requests" counter and "dispatch" histogram every
	// session server bumps (SetRollup) — so statshttp's /metrics and
	// /slo over this one registry cover all tenants.
	metrics       *obs.Registry
	sessionsGauge *obs.Gauge
	connsGauge    *obs.Gauge
	admissions    *obs.Counter
	rejections    *obs.Counter
	evictions     *obs.Counter
	sweeps        *obs.Counter

	sessMu   obs.TimedMutex
	sessions map[string]*Session // guarded by sessMu
	listener net.Listener        // guarded by sessMu
	closed   bool                // guarded by sessMu

	stop    chan struct{} // closes to stop the sweeper
	swept   chan struct{} // closes when the sweeper exits
	sweeper bool          // whether a sweeper goroutine was started
}

// NewFarm creates a farm. If opts.IdleEvict is nonzero the idle sweeper
// starts immediately; Close stops it.
func NewFarm(opts FarmOptions) *Farm {
	if opts.Width <= 0 {
		opts.Width = 1024
	}
	if opts.Height <= 0 {
		opts.Height = 768
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = opts.IdleEvict / 4
	}
	if opts.SweepInterval < 10*time.Millisecond {
		opts.SweepInterval = 10 * time.Millisecond
	}
	if opts.SweepInterval > 30*time.Second {
		opts.SweepInterval = 30 * time.Second
	}
	f := &Farm{
		width:       opts.Width,
		height:      opts.Height,
		maxSessions: opts.MaxSessions,
		quota:       opts.Quota,
		idleEvict:   opts.IdleEvict,
		sweepEvery:  opts.SweepInterval,
		configure:   opts.Configure,
		metrics:     obs.NewRegistry(),
		sessions:    make(map[string]*Session),
		stop:        make(chan struct{}),
		swept:       make(chan struct{}),
	}
	f.sessionsGauge = f.metrics.Gauge("farm.sessions")
	f.connsGauge = f.metrics.Gauge("farm.conns")
	f.admissions = f.metrics.Counter("farm.admissions")
	f.rejections = f.metrics.Counter("farm.rejections")
	f.evictions = f.metrics.Counter("farm.evictions")
	f.sweeps = f.metrics.Counter("farm.sweeps")
	f.sessMu.Instrument(f.metrics.Histogram("lockwait.sessions"))
	if f.idleEvict > 0 {
		f.sweeper = true
		go f.runSweeper()
	}
	return f
}

// Metrics returns the farm's aggregate registry: the farm.* lifecycle
// series, the cross-session "requests"/"dispatch" rollup, the
// "lockwait.sessions" histogram of registry-lock waits, and
// quota.denied.* totals. Serve it with statshttp and /metrics and /slo
// report the whole farm.
func (f *Farm) Metrics() *obs.Registry { return f.metrics }

// SessionCount returns the number of live sessions.
func (f *Farm) SessionCount() int {
	f.sessMu.Lock()
	defer f.sessMu.Unlock()
	return len(f.sessions)
}

// SessionNames returns the live session names (unordered).
func (f *Farm) SessionNames() []string {
	f.sessMu.Lock()
	defer f.sessMu.Unlock()
	names := make([]string, 0, len(f.sessions))
	for name := range f.sessions {
		names = append(names, name)
	}
	return names
}

// Lookup returns the named live session, if any.
func (f *Farm) Lookup(name string) (*Session, bool) {
	f.sessMu.Lock()
	defer f.sessMu.Unlock()
	sess, ok := f.sessions[name]
	return sess, ok
}

// attach admits a connection into the named session, creating the
// session if the cap allows. The session server is constructed under
// sessMu — construction takes no locks and must finish before a second
// attacher can race to the same name — but is never *called into* here.
func (f *Farm) attach(name string) (*Session, error) {
	now := time.Now()
	f.sessMu.Lock()
	defer f.sessMu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("farm: closed")
	}
	sess := f.sessions[name]
	if sess == nil {
		if len(f.sessions) >= f.maxSessions {
			f.rejections.Inc()
			return nil, fmt.Errorf("farm: admission denied for session %q: session cap %d reached", name, f.maxSessions)
		}
		srv := New(f.width, f.height)
		srv.SetQuota(f.quota)
		srv.SetRollup(f.metrics)
		sess = &Session{name: name, srv: srv, created: now}
		srv.setActivity(&sess.lastActive)
		if f.configure != nil {
			f.configure(srv)
		}
		f.sessions[name] = sess
		f.admissions.Inc()
		f.sessionsGauge.Set(int64(len(f.sessions)))
	}
	sess.conns.Add(1)
	sess.lastActive.Store(now.UnixNano())
	return sess, nil
}

// detach records a connection leaving its session. The session itself
// stays resident (a wish process reconnecting finds its windows intact)
// until the idle sweeper or an explicit Evict retires it.
func (f *Farm) detach(sess *Session) {
	sess.conns.Add(-1)
	sess.lastActive.Store(time.Now().UnixNano())
}

// refuse answers a connection the farm will not serve: a clean
// pre-setup error frame (sequence 0), then close. xclient.Open decodes
// it into a clear error instead of a timeout.
func (f *Farm) refuse(nc net.Conn, msg string) {
	w := xproto.AcquireWriter()
	w.PutU64(0)
	w.PutString(msg)
	frame := make([]byte, 0, len(w.Bytes())+5)
	frame = append(frame, xproto.KindError)
	n := len(w.Bytes())
	frame = append(frame, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	frame = append(frame, w.Bytes()...)
	xproto.ReleaseWriter(w)
	if to := DefaultWriteTimeout; to > 0 {
		nc.SetWriteDeadline(time.Now().Add(to))
	}
	nc.Write(frame)
	nc.Close()
}

// ServeConn runs the farm handshake on one connection, then hands it to
// its session's server for the rest of its life. The first client
// frame must arrive within attachTimeout; an AttachSession frame routes
// by name, and any other first frame is replayed to the default
// session ("") so pre-farm clients keep working against a farm of one.
func (f *Farm) ServeConn(nc net.Conn) {
	nc.SetReadDeadline(time.Now().Add(attachTimeout))
	op, payload, err := xproto.ReadRequestFrame(nc)
	if err != nil {
		f.refuse(nc, fmt.Sprintf("farm: reading attach handshake: %v", err))
		return
	}
	nc.SetReadDeadline(time.Time{})
	name := ""
	if op == xproto.OpAttachSession {
		var req xproto.AttachSessionReq
		r := xproto.NewReader(payload)
		req.Decode(r)
		if r.Err() != nil {
			f.refuse(nc, fmt.Sprintf("farm: malformed attach: %v", r.Err()))
			return
		}
		name = req.Session
	} else {
		// Legacy first frame: put it back in front of the stream so the
		// session server dispatches it as request #1.
		frame := make([]byte, 0, len(payload)+6)
		frame = append(frame, byte(op>>8), byte(op))
		n := len(payload)
		frame = append(frame, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		frame = append(frame, payload...)
		nc = &replayConn{Conn: nc, r: io.MultiReader(bytes.NewReader(frame), nc)}
	}
	sess, err := f.attach(name)
	if err != nil {
		f.refuse(nc, err.Error())
		return
	}
	f.connsGauge.Add(1)
	sess.srv.ServeConn(nc)
	f.connsGauge.Add(-1)
	f.detach(sess)
}

// replayConn prepends already-read bytes to a connection's stream.
type replayConn struct {
	net.Conn
	r io.Reader
}

func (rc *replayConn) Read(p []byte) (int, error) { return rc.r.Read(p) }

// Serve accepts connections on l until the listener is closed.
func (f *Farm) Serve(l net.Listener) {
	f.sessMu.Lock()
	if f.closed {
		f.sessMu.Unlock()
		l.Close()
		return
	}
	f.listener = l
	f.sessMu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return
		}
		go f.ServeConn(nc)
	}
}

// Listen starts serving on a TCP address and returns the bound address.
func (f *Farm) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go f.Serve(l)
	return l.Addr().String(), nil
}

// ConnectPipe creates an in-process connection to the farm and returns
// the client end (pair with xclient.OpenSession).
func (f *Farm) ConnectPipe() net.Conn {
	client, server := net.Pipe()
	go f.ServeConn(server)
	return client
}

// Evict forcibly retires a session: it is removed from the registry
// under sessMu, then — lock released — its server is closed, which
// severs its clients and runs the ordinary per-connection cleanup.
// Reports whether the session existed. Other tenants are untouchable
// by construction: the victim's server holds no other session's state.
func (f *Farm) Evict(name string) bool {
	f.sessMu.Lock()
	sess := f.sessions[name]
	if sess != nil {
		delete(f.sessions, name)
		f.sessionsGauge.Set(int64(len(f.sessions)))
	}
	f.sessMu.Unlock()
	if sess == nil {
		return false
	}
	sess.srv.Close()
	f.evictions.Inc()
	return true
}

// sweepIdle evicts every session idle past the deadline, including ones
// with parked connections (an idle wish holding its pipe open does not
// pin its session — its connection is severed with the session).
// Victims are collected under sessMu and destroyed after it is
// released. Returns the number evicted.
func (f *Farm) sweepIdle(now time.Time) int {
	f.sweeps.Inc()
	cutoff := now.Add(-f.idleEvict).UnixNano()
	f.sessMu.Lock()
	var victims []*Session
	for name, sess := range f.sessions {
		if sess.lastActive.Load() <= cutoff {
			victims = append(victims, sess)
			delete(f.sessions, name)
		}
	}
	f.sessionsGauge.Set(int64(len(f.sessions)))
	f.sessMu.Unlock()
	for _, sess := range victims {
		sess.srv.Close()
		f.evictions.Inc()
	}
	return len(victims)
}

// runSweeper ticks the idle sweep until Close.
func (f *Farm) runSweeper() {
	defer close(f.swept)
	t := time.NewTicker(f.sweepEvery)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			f.sweepIdle(now)
		case <-f.stop:
			return
		}
	}
}

// Close shuts the farm down: the sweeper stops, the listener closes,
// and every session's server is closed (collected under sessMu,
// destroyed outside it).
func (f *Farm) Close() {
	f.sessMu.Lock()
	if f.closed {
		f.sessMu.Unlock()
		return
	}
	f.closed = true
	l := f.listener
	victims := make([]*Session, 0, len(f.sessions))
	for name, sess := range f.sessions {
		victims = append(victims, sess)
		delete(f.sessions, name)
	}
	f.sessionsGauge.Set(0)
	f.sessMu.Unlock()
	if f.sweeper {
		close(f.stop)
		<-f.swept
	}
	if l != nil {
		l.Close()
	}
	for _, sess := range victims {
		sess.srv.Close()
	}
}
