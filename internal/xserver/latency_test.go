package xserver_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xserver"
)

// TestLatencyPerSegment checks the per-segment model's defining
// property: a batch of pipelined requests flushed together pays the
// simulated IPC latency once, not once per request.
func TestLatencyPerSegment(t *testing.T) {
	srv := xserver.New(400, 300)
	t.Cleanup(srv.Close)
	const lat = 20 * time.Millisecond
	srv.SetLatency(lat)
	srv.SetLatencyModel(xserver.LatencyPerSegment)

	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	segments := srv.Metrics().Counter("segments")
	before := segments.Value()

	const k = 10
	start := time.Now()
	cookies := make([]xclient.AtomCookie, k)
	for i := range cookies {
		cookies[i] = d.InternAtomAsync(fmt.Sprintf("SEGMENT_ATOM_%d", i))
	}
	for i := range cookies {
		if _, err := cookies[i].Wait(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	// All k requests went out in one flush, so one segment: roughly one
	// latency charge, and nowhere near the k charges the per-request
	// model would make.
	if elapsed < lat {
		t.Fatalf("batch completed in %v, below the %v wire latency", elapsed, lat)
	}
	if elapsed >= time.Duration(k)*lat/2 {
		t.Fatalf("batch took %v; per-segment model should charge ~1×%v, not per request", elapsed, lat)
	}
	if got := segments.Value() - before; got > 3 {
		t.Fatalf("batch consumed %d wire segments, want ≤ 3", got)
	}
}

// TestLatencyPerRequestDefault checks that the default model still
// charges latency per request, preserving the pre-pipelining
// experiment semantics.
func TestLatencyPerRequestDefault(t *testing.T) {
	srv := xserver.New(400, 300)
	t.Cleanup(srv.Close)
	const lat = 10 * time.Millisecond
	srv.SetLatency(lat)

	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	const k = 5
	start := time.Now()
	cookies := make([]xclient.AtomCookie, k)
	for i := range cookies {
		cookies[i] = d.InternAtomAsync(fmt.Sprintf("PERREQ_ATOM_%d", i))
	}
	for i := range cookies {
		if _, err := cookies[i].Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < time.Duration(k)*lat {
		t.Fatalf("k=%d requests at %v per-request latency took only %v", k, lat, elapsed)
	}
}
