package xserver

import "repro/internal/xproto"

// image is a server-side pixel buffer: the backing store of a window or
// pixmap. Pixels are packed 0x00RRGGBB.
type image struct {
	w, h int
	pix  []uint32
}

func newImage(w, h int) *image {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return &image{w: w, h: h, pix: make([]uint32, w*h)}
}

// resize reallocates the buffer preserving the overlapping region.
func (im *image) resize(w, h int) {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	if w == im.w && h == im.h {
		return
	}
	np := make([]uint32, w*h)
	for y := 0; y < h && y < im.h; y++ {
		copy(np[y*w:y*w+min(w, im.w)], im.pix[y*im.w:y*im.w+min(w, im.w)])
	}
	im.w, im.h = w, h
	im.pix = np
}

func (im *image) set(x, y int, pixel uint32) {
	if x < 0 || y < 0 || x >= im.w || y >= im.h {
		return
	}
	im.pix[y*im.w+x] = pixel
}

func (im *image) get(x, y int) uint32 {
	if x < 0 || y < 0 || x >= im.w || y >= im.h {
		return 0
	}
	return im.pix[y*im.w+x]
}

// fillRect fills a clipped rectangle.
func (im *image) fillRect(x, y, w, h int, pixel uint32) {
	x0, y0 := max(x, 0), max(y, 0)
	x1, y1 := min(x+w, im.w), min(y+h, im.h)
	for yy := y0; yy < y1; yy++ {
		row := im.pix[yy*im.w : yy*im.w+im.w]
		for xx := x0; xx < x1; xx++ {
			row[xx] = pixel
		}
	}
}

// drawRect outlines a rectangle with the given line width.
func (im *image) drawRect(x, y, w, h, lw int, pixel uint32) {
	if lw < 1 {
		lw = 1
	}
	im.fillRect(x, y, w, lw, pixel)      // top
	im.fillRect(x, y+h-lw, w, lw, pixel) // bottom
	im.fillRect(x, y, lw, h, pixel)      // left
	im.fillRect(x+w-lw, y, lw, h, pixel) // right
}

// drawLine draws a 1-pixel Bresenham line, thickened for lw > 1.
func (im *image) drawLine(x0, y0, x1, y1, lw int, pixel uint32) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if lw <= 1 {
			im.set(x0, y0, pixel)
		} else {
			r := lw / 2
			im.fillRect(x0-r, y0-r, lw, lw, pixel)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// fillPoly fills a polygon with the even-odd rule using a scanline
// algorithm.
func (im *image) fillPoly(pts []xproto.Point, pixel uint32) {
	if len(pts) < 3 {
		return
	}
	minY, maxY := int(pts[0].Y), int(pts[0].Y)
	for _, p := range pts {
		minY = min(minY, int(p.Y))
		maxY = max(maxY, int(p.Y))
	}
	minY = max(minY, 0)
	maxY = min(maxY, im.h-1)
	for y := minY; y <= maxY; y++ {
		var xs []int
		n := len(pts)
		for i := 0; i < n; i++ {
			a, b := pts[i], pts[(i+1)%n]
			ay, by := int(a.Y), int(b.Y)
			if ay == by {
				continue
			}
			if (y >= ay && y < by) || (y >= by && y < ay) {
				t := float64(y-ay) / float64(by-ay)
				xs = append(xs, int(a.X)+int(t*float64(int(b.X)-int(a.X))))
			}
		}
		// Insertion-sort the few crossings.
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		for i := 0; i+1 < len(xs); i += 2 {
			im.fillRect(xs[i], y, xs[i+1]-xs[i]+1, 1, pixel)
		}
	}
}

// copyFrom copies a rectangle from src.
func (im *image) copyFrom(src *image, sx, sy, dx, dy, w, h int) {
	// Copy via an intermediate when src == dst and regions may overlap.
	if src == im {
		tmp := newImage(w, h)
		tmp.copyFrom(&image{w: src.w, h: src.h, pix: append([]uint32(nil), src.pix...)}, sx, sy, 0, 0, w, h)
		src = tmp
		sx, sy = 0, 0
	}
	for yy := 0; yy < h; yy++ {
		for xx := 0; xx < w; xx++ {
			px, py := sx+xx, sy+yy
			if px < 0 || py < 0 || px >= src.w || py >= src.h {
				continue
			}
			im.set(dx+xx, dy+yy, src.pix[py*src.w+px])
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
