package xserver

import "repro/internal/xproto"

// image is a server-side pixel buffer: the backing store of a window or
// pixmap. Pixels are packed 0x00RRGGBB.
//
// Storage is tiled: the pixel area is carved into fixed 64×64 slabs,
// each row-major within the tile, so every draw primitive works on
// contiguous spans no longer than a tile row and a screenshot can
// snapshot the buffer by aliasing slab pointers instead of copying
// pixels (copy-on-write: see snapshot and writableTile). Each tile
// carries a version (bumped on every write acquisition), a dirty flag
// (damage since the last snapshot) and a shared flag (a snapshot
// aliases the slab; the next writer clones it first).
//
// Concurrency: an image has no lock of its own. All tile state — slab
// pointers, versions, dirty and shared flags — is guarded by the lock
// of the drawable that owns the image (treeMu for windows, the pixmap's
// mu for pixmaps), exactly like the pixels were before tiling. A
// snapshot taken under that lock is immutable afterwards and may be
// read with no lock at all: writers never mutate a shared slab, they
// replace it.
type image struct {
	w, h   int
	tw, th int    // tiles across / down
	tiles  []tile // tw*th tiles, row-major
	m      *renderMetrics
}

const (
	tileShift = 6
	tileSize  = 1 << tileShift // 64×64 pixels, 16KiB per slab
	tileMask  = tileSize - 1
)

// tile is one 64×64 slab plus its damage-tracking state.
type tile struct {
	px      []uint32 // tileSize*tileSize pixels, row-major within the tile
	version uint64   // bumped on every write acquisition
	shared  bool     // a snapshot aliases px: clone before writing
	dirty   bool     // written since the last snapshot
}

func newImage(w, h int) *image { return newImageM(w, h, nil) }

// newImageM creates an image reporting damage into m (nil for an
// unmetered image, e.g. a screenshot compose target or a test buffer).
func newImageM(w, h int, m *renderMetrics) *image {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	im := &image{
		w: w, h: h,
		tw: (w + tileMask) >> tileShift,
		th: (h + tileMask) >> tileShift,
		m:  m,
	}
	// One backing allocation for the whole grid; COW clones peel
	// individual slabs off later as needed.
	backing := make([]uint32, im.tw*im.th*tileSize*tileSize)
	im.tiles = make([]tile, im.tw*im.th)
	for i := range im.tiles {
		im.tiles[i].px = backing[i*tileSize*tileSize : (i+1)*tileSize*tileSize : (i+1)*tileSize*tileSize]
	}
	return im
}

// writableTile returns tile (tx, ty) ready for writing: a slab shared
// with a snapshot is cloned first (the snapshot keeps the old pixels),
// the version is bumped, and a clean tile is marked dirty.
func (im *image) writableTile(tx, ty int) *tile {
	t := &im.tiles[ty*im.tw+tx]
	if t.shared {
		np := make([]uint32, tileSize*tileSize)
		copy(np, t.px)
		t.px = np
		t.shared = false
		if im.m != nil {
			im.m.tilesCOW.Inc()
		}
	}
	t.version++
	if !t.dirty {
		t.dirty = true
		if im.m != nil {
			im.m.tilesDamaged.Inc()
		}
	}
	return t
}

// snapshot returns a read-only copy-on-write view of the image: the
// returned image aliases every slab and marks the original's tiles
// shared, so the caller may read the snapshot with no lock held while
// painters keep drawing (their first write to a shared tile clones it).
// Dirty flags reset here, making the damage counters mean "tiles
// touched since the last export". Must be called with the owning
// drawable's lock held; the snapshot itself must never be drawn into.
func (im *image) snapshot() *image {
	sn := &image{w: im.w, h: im.h, tw: im.tw, th: im.th, tiles: make([]tile, len(im.tiles))}
	for i := range im.tiles {
		t := &im.tiles[i]
		t.shared = true
		t.dirty = false
		sn.tiles[i] = tile{px: t.px, version: t.version}
	}
	if im.m != nil {
		im.m.tilesSnapshot.Add(uint64(len(im.tiles)))
	}
	return sn
}

// damagedTiles counts tiles written since the last snapshot.
func (im *image) damagedTiles() int {
	n := 0
	for i := range im.tiles {
		if im.tiles[i].dirty {
			n++
		}
	}
	return n
}

// resize reallocates the buffer preserving the overlapping region.
func (im *image) resize(w, h int) {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	if w == im.w && h == im.h {
		return
	}
	ni := newImageM(w, h, im.m)
	ni.copyFrom(im, 0, 0, 0, 0, min(w, im.w), min(h, im.h))
	im.w, im.h = ni.w, ni.h
	im.tw, im.th = ni.tw, ni.th
	im.tiles = ni.tiles
}

func (im *image) set(x, y int, pixel uint32) {
	if x < 0 || y < 0 || x >= im.w || y >= im.h {
		return
	}
	t := im.writableTile(x>>tileShift, y>>tileShift)
	t.px[(y&tileMask)<<tileShift|(x&tileMask)] = pixel
}

func (im *image) get(x, y int) uint32 {
	if x < 0 || y < 0 || x >= im.w || y >= im.h {
		return 0
	}
	return im.tiles[(y>>tileShift)*im.tw+(x>>tileShift)].px[(y&tileMask)<<tileShift|(x&tileMask)]
}

// fillSpan pattern-fills a contiguous span by doubling copies: one
// store, then log2(n) memmoves, instead of one store per pixel.
func fillSpan(s []uint32, pixel uint32) {
	if len(s) == 0 {
		return
	}
	s[0] = pixel
	for i := 1; i < len(s); i *= 2 {
		copy(s[i:], s[:i])
	}
}

// fillRect fills a clipped rectangle.
func (im *image) fillRect(x, y, w, h int, pixel uint32) {
	x0, y0 := max(x, 0), max(y, 0)
	x1, y1 := min(x+w, im.w), min(y+h, im.h)
	if x0 >= x1 || y0 >= y1 {
		return
	}
	im.fillClipped(x0, y0, x1, y1, pixel)
}

// fillClipped fills [x0,x1)×[y0,y1), already clipped to the image, one
// tile at a time: the first covered row of each tile is pattern-filled,
// the rest are row copies of it.
func (im *image) fillClipped(x0, y0, x1, y1 int, pixel uint32) {
	for ty := y0 >> tileShift; ty <= (y1-1)>>tileShift; ty++ {
		im.fillTileRow(ty, x0, y0, x1, y1, pixel)
	}
}

// fillTileRow fills the part of clipped rect [x0,x1)×[y0,y1) that lands
// in tile row ty.
func (im *image) fillTileRow(ty, x0, y0, x1, y1 int, pixel uint32) {
	ry0 := max(y0, ty<<tileShift)
	ry1 := min(y1, (ty+1)<<tileShift)
	for tx := x0 >> tileShift; tx <= (x1-1)>>tileShift; tx++ {
		cx0 := max(x0, tx<<tileShift)
		cx1 := min(x1, (tx+1)<<tileShift)
		t := im.writableTile(tx, ty)
		if cx1-cx0 == tileSize {
			// Full tile width: the covered rows are one contiguous
			// block (rows are adjacent within a slab), so a single
			// doubling fill grows to slab-sized memmoves instead of
			// one 64-pixel copy per row.
			o := (ry0 & tileMask) << tileShift
			fillSpan(t.px[o:o+(ry1-ry0)<<tileShift], pixel)
			continue
		}
		base := (ry0&tileMask)<<tileShift | (cx0 & tileMask)
		first := t.px[base : base+(cx1-cx0)]
		fillSpan(first, pixel)
		for yy := ry0 + 1; yy < ry1; yy++ {
			o := (yy&tileMask)<<tileShift | (cx0 & tileMask)
			copy(t.px[o:o+(cx1-cx0)], first)
		}
	}
}

// fillRects fills a batch of rectangles (one PolyFillRectangle request)
// in a single clipped pass, fanning the tile rows of large fills out
// across the render worker pool. Tile rows of one rectangle are
// disjoint tile sets, so the workers never touch the same tile; the
// rectangles themselves run in order, preserving overlap semantics.
func (im *image) fillRects(rects []xproto.Rect, pixel uint32) {
	for _, rc := range rects {
		x, y, w, h := int(rc.X), int(rc.Y), int(rc.W), int(rc.H)
		x0, y0 := max(x, 0), max(y, 0)
		x1, y1 := min(x+w, im.w), min(y+h, im.h)
		if x0 >= x1 || y0 >= y1 {
			continue
		}
		ty0, ty1 := y0>>tileShift, (y1-1)>>tileShift
		if (x1-x0)*(y1-y0) >= parallelFillMin && ty1 > ty0 && parallelizeFills() {
			if im.m != nil {
				im.m.parallelFills.Inc()
			}
			parallelTileRows(ty0, ty1, func(ty int) {
				im.fillTileRow(ty, x0, y0, x1, y1, pixel)
			})
			continue
		}
		im.fillClipped(x0, y0, x1, y1, pixel)
	}
}

// drawRect outlines a rectangle with the given line width.
func (im *image) drawRect(x, y, w, h, lw int, pixel uint32) {
	if lw < 1 {
		lw = 1
	}
	im.fillRect(x, y, w, lw, pixel)      // top
	im.fillRect(x, y+h-lw, w, lw, pixel) // bottom
	im.fillRect(x, y, lw, h, pixel)      // left
	im.fillRect(x+w-lw, y, lw, h, pixel) // right
}

// drawLine draws a 1-pixel Bresenham line, thickened for lw > 1.
// Horizontal and vertical lines — the overwhelming majority of what
// widgets draw (borders, separators, reliefs) — collapse to one
// row-wise rectangle fill; only true diagonals walk pixel by pixel.
func (im *image) drawLine(x0, y0, x1, y1, lw int, pixel uint32) {
	if lw < 1 {
		lw = 1
	}
	r := 0
	if lw > 1 {
		r = lw / 2
	}
	if y0 == y1 {
		lx := min(x0, x1)
		if lw <= 1 {
			im.fillRect(lx, y0, abs(x1-x0)+1, 1, pixel)
		} else {
			im.fillRect(lx-r, y0-r, abs(x1-x0)+lw, lw, pixel)
		}
		return
	}
	if x0 == x1 {
		ly := min(y0, y1)
		if lw <= 1 {
			im.fillRect(x0, ly, 1, abs(y1-y0)+1, pixel)
		} else {
			im.fillRect(x0-r, ly-r, lw, abs(y1-y0)+lw, pixel)
		}
		return
	}
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if lw <= 1 {
			im.set(x0, y0, pixel)
		} else {
			im.fillRect(x0-r, y0-r, lw, lw, pixel)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// fillPoly fills a polygon with the even-odd rule using a scanline
// algorithm. One crossing buffer is hoisted out of the scanline loop
// and reused (insertion-sorted in place) across rows.
func (im *image) fillPoly(pts []xproto.Point, pixel uint32) {
	if len(pts) < 3 {
		return
	}
	minY, maxY := int(pts[0].Y), int(pts[0].Y)
	for _, p := range pts {
		minY = min(minY, int(p.Y))
		maxY = max(maxY, int(p.Y))
	}
	minY = max(minY, 0)
	maxY = min(maxY, im.h-1)
	xs := make([]int, 0, 2*len(pts))
	n := len(pts)
	for y := minY; y <= maxY; y++ {
		xs = xs[:0]
		for i := 0; i < n; i++ {
			a, b := pts[i], pts[(i+1)%n]
			ay, by := int(a.Y), int(b.Y)
			if ay == by {
				continue
			}
			if (y >= ay && y < by) || (y >= by && y < ay) {
				t := float64(y-ay) / float64(by-ay)
				xs = append(xs, int(a.X)+int(t*float64(int(b.X)-int(a.X))))
			}
		}
		// Insertion-sort the few crossings.
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		for i := 0; i+1 < len(xs); i += 2 {
			im.fillRect(xs[i], y, xs[i+1]-xs[i]+1, 1, pixel)
		}
	}
}

// copyFrom copies a rectangle from src. Both rectangles are clipped
// once up front (shifting the pair in lockstep so the seed's
// per-pixel "skip out-of-bounds on either side" semantics hold), then
// rows move segment-wise with copy(). A self-copy whose clipped source
// and destination do not actually overlap takes the same direct path;
// a genuinely overlapping self-copy stages each row through a scratch
// buffer and walks rows in the safe vertical direction — no full-buffer
// clone in either case.
func (im *image) copyFrom(src *image, sx, sy, dx, dy, w, h int) {
	// Clip once: pull both origins inside their images in lockstep,
	// then bound the extent by both.
	if sx < 0 {
		dx -= sx
		w += sx
		sx = 0
	}
	if sy < 0 {
		dy -= sy
		h += sy
		sy = 0
	}
	if dx < 0 {
		sx -= dx
		w += dx
		dx = 0
	}
	if dy < 0 {
		sy -= dy
		h += dy
		dy = 0
	}
	w = min(w, src.w-sx, im.w-dx)
	h = min(h, src.h-sy, im.h-dy)
	if w <= 0 || h <= 0 {
		return
	}
	if src == im && dx < sx+w && sx < dx+w && dy < sy+h && sy < dy+h {
		im.copyOverlapping(sx, sy, dx, dy, w, h)
		return
	}
	for yy := 0; yy < h; yy++ {
		im.copyRow(src, sx, sy+yy, dx, dy+yy, w)
	}
}

// copyRow copies w pixels from src row (sx, sy) to row (dx, dy), in
// segments bounded by both sides' tile widths. Coordinates are already
// clipped.
func (im *image) copyRow(src *image, sx, sy, dx, dy, w int) {
	srcBase := (sy >> tileShift) * src.tw
	srcOff := (sy & tileMask) << tileShift
	dstOff := (dy & tileMask) << tileShift
	ty := dy >> tileShift
	for x := 0; x < w; {
		n := min(w-x, tileSize-((sx+x)&tileMask), tileSize-((dx+x)&tileMask))
		st := &src.tiles[srcBase+((sx+x)>>tileShift)]
		dt := im.writableTile((dx+x)>>tileShift, ty)
		so := srcOff | ((sx + x) & tileMask)
		do := dstOff | ((dx + x) & tileMask)
		copy(dt.px[do:do+n], st.px[so:so+n])
		x += n
	}
}

// copyOverlapping handles a self-copy whose clipped rectangles overlap.
// When the copy shifts vertically (dy != sy), walking rows in the safe
// direction guarantees every source row is read before it is
// overwritten — row r is read at step r-sy and written at step r-dy —
// so rows copy directly, tile segment by tile segment. Only a purely
// horizontal shift (dy == sy, source and destination share rows) needs
// to stage each row through a scratch buffer. Coordinates are already
// clipped.
func (im *image) copyOverlapping(sx, sy, dx, dy, w, h int) {
	if dy == sy {
		scratch := make([]uint32, w)
		for yy := 0; yy < h; yy++ {
			im.readRow(sx, sy+yy, scratch)
			im.writeRow(dx, dy+yy, scratch)
		}
		return
	}
	yy0, yy1, step := 0, h, 1
	if dy > sy {
		yy0, yy1, step = h-1, -1, -1
	}
	for yy := yy0; yy != yy1; yy += step {
		im.copyRow(im, sx, sy+yy, dx, dy+yy, w)
	}
}

// readRow copies len(dst) pixels of row sy starting at sx into dst.
// Coordinates are already clipped.
func (im *image) readRow(sx, sy int, dst []uint32) {
	base := (sy >> tileShift) * im.tw
	off := (sy & tileMask) << tileShift
	for x := 0; x < len(dst); {
		n := min(len(dst)-x, tileSize-((sx+x)&tileMask))
		t := &im.tiles[base+((sx+x)>>tileShift)]
		o := off | ((sx + x) & tileMask)
		copy(dst[x:x+n], t.px[o:o+n])
		x += n
	}
}

// writeRow copies src into row dy starting at dx. Coordinates are
// already clipped.
func (im *image) writeRow(dx, dy int, src []uint32) {
	ty := dy >> tileShift
	off := (dy & tileMask) << tileShift
	for x := 0; x < len(src); {
		n := min(len(src)-x, tileSize-((dx+x)&tileMask))
		t := im.writableTile((dx+x)>>tileShift, ty)
		o := off | ((dx + x) & tileMask)
		copy(t.px[o:o+n], src[x:x+n])
		x += n
	}
}

// packRGB packs the image's pixels into dst as row-major RGB triples.
// dst must be exactly w*h*3 bytes; the walk is segment-wise over tile
// rows, so the inner loop reads contiguous memory.
func (im *image) packRGB(dst []byte) {
	di := 0
	for y := 0; y < im.h; y++ {
		base := (y >> tileShift) * im.tw
		off := (y & tileMask) << tileShift
		for x := 0; x < im.w; {
			n := min(im.w-x, tileSize-(x&tileMask))
			o := off | (x & tileMask)
			seg := im.tiles[base+(x>>tileShift)].px[o : o+n]
			for _, px := range seg {
				dst[di] = byte(px >> 16)
				dst[di+1] = byte(px >> 8)
				dst[di+2] = byte(px)
				di += 3
			}
			x += n
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
