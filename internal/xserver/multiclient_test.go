package xserver

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xproto"
)

// windowCount snapshots the live window count (including the root).
func (s *Server) windowCount() int {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	return len(s.windows)
}

// TestCleanupConnNestedOwnership: disconnect cleanup must survive one
// client owning a subtree nested inside another client's window — the
// collect-then-destroy regression. Client B owns a chain nested inside
// client A's window (plus a top-level of its own); when B disconnects,
// exactly B's windows go away, A's window keeps only A's child, and A
// stays fully usable.
func TestCleanupConnNestedOwnership(t *testing.T) {
	s := New(400, 300)
	defer s.Close()

	a, err := xclient.Open(s.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	w1 := a.CreateWindow(a.Root, 10, 10, 200, 150, 1, xclient.WindowAttributes{})
	a2 := a.CreateWindow(w1, 5, 5, 50, 50, 0, xclient.WindowAttributes{})
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}

	b, err := xclient.Open(s.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bt := b.CreateWindow(b.Root, 250, 10, 100, 100, 1, xclient.WindowAttributes{})
	b1 := b.CreateWindow(w1, 20, 20, 80, 60, 0, xclient.WindowAttributes{})
	b2 := b.CreateWindow(b1, 4, 4, 40, 30, 0, xclient.WindowAttributes{})
	b3 := b.CreateWindow(b2, 2, 2, 20, 15, 0, xclient.WindowAttributes{})
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}

	if got := s.windowCount(); got != 7 {
		t.Fatalf("window count before disconnect = %d, want 7", got)
	}

	// Disconnect B; cleanup runs asynchronously when its read loop exits.
	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.windowCount() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("cleanup never settled: window count = %d, want 3", s.windowCount())
		}
		time.Sleep(2 * time.Millisecond)
	}

	s.treeMu.Lock()
	survivorW1 := s.windows[w1]
	survivorA2 := s.windows[a2]
	var leaked []xproto.ID
	for _, id := range []xproto.ID{bt, b1, b2, b3} {
		if s.windows[id] != nil {
			leaked = append(leaked, id)
		}
	}
	var w1Children []xproto.ID
	if survivorW1 != nil {
		for _, ch := range survivorW1.children {
			w1Children = append(w1Children, ch.id)
		}
	}
	s.treeMu.Unlock()

	if survivorW1 == nil || survivorA2 == nil {
		t.Fatalf("client A's windows destroyed by B's cleanup (w1=%v a2=%v)", survivorW1 != nil, survivorA2 != nil)
	}
	if len(leaked) != 0 {
		t.Fatalf("client B's windows leaked: %v", leaked)
	}
	if len(w1Children) != 1 || w1Children[0] != a2 {
		t.Fatalf("w1 children after cleanup = %v, want [%d]", w1Children, a2)
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("surviving client broken after cleanup: %v", err)
	}
}

// TestMultiClientStressRace drives 8 concurrent clients through a mixed
// workload across every subsystem — windows created, configured and
// destroyed; overlapping atom sets interned; colors allocated; GCs and
// pixmaps churned; cross-client SendEvent traffic — under the race
// detector, with a watchdog per phase. After a clean teardown every
// resource count must be exact.
func TestMultiClientStressRace(t *testing.T) {
	const clients = 8
	const rounds = 25

	s := New(800, 600)
	defer s.Close()

	displays := make([]*xclient.Display, clients)
	for i := range displays {
		d, err := xclient.Open(s.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		displays[i] = d
	}

	runPhase := func(name string, f func(i int, d *xclient.Display) error) {
		t.Helper()
		errc := make(chan error, clients)
		for i, d := range displays {
			go func(i int, d *xclient.Display) { errc <- f(i, d) }(i, d)
		}
		watchdog := time.After(60 * time.Second)
		for range displays {
			select {
			case err := <-errc:
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			case <-watchdog:
				t.Fatalf("%s: watchdog fired — a client wedged (deadlock?)", name)
			}
		}
	}

	var sharedAtoms []string
	for k := 0; k < 16; k++ {
		sharedAtoms = append(sharedAtoms, fmt.Sprintf("STRESS_ATOM_%d", k))
	}
	palette := []string{"red", "green", "blue", "mediumseagreen", "bisque", "gold", "steelblue", "palepink1"}

	s.atomsMu.RLock()
	atomBase := len(s.atoms)
	s.atomsMu.RUnlock()

	tops := make([]xproto.ID, clients)
	runPhase("create tops", func(i int, d *xclient.Display) error {
		tops[i] = d.CreateWindow(d.Root, i*40, 10, 120, 90, 1,
			xclient.WindowAttributes{EventMask: xproto.StructureNotifyMask | xproto.ExposureMask})
		d.MapWindow(tops[i])
		return d.Sync()
	})

	runPhase("mixed workload", func(i int, d *xclient.Display) error {
		for r := 0; r < rounds; r++ {
			child := d.CreateWindow(tops[i], r%20, r%20, 30, 20, 0, xclient.WindowAttributes{})
			d.MapWindow(child)
			d.MoveResizeWindow(child, (r+1)%25, (r+2)%25, 24+r%8, 18+r%6)

			// Overlapping atom sets, pipelined 4 deep.
			var acks [4]xclient.AtomCookie
			for k := range acks {
				acks[k] = d.InternAtomAsync(sharedAtoms[(r+k*3+i)%len(sharedAtoms)])
			}
			for k := range acks {
				if _, err := acks[k].Wait(); err != nil {
					return fmt.Errorf("client %d: intern: %w", i, err)
				}
			}

			if _, found, err := d.AllocNamedColor(palette[(i+r)%len(palette)]); err != nil || !found {
				return fmt.Errorf("client %d: alloc color: found=%v err=%v", i, found, err)
			}

			gc := d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground, Foreground: uint32(i)})
			d.ChangeGC(gc, xclient.GCValues{Mask: xproto.GCLineWidth, LineWidth: 2})
			pix := d.CreatePixmap(16, 16)
			d.FillRectangle(pix, gc, 0, 0, 16, 16)
			d.CopyArea(pix, tops[i], gc, 0, 0, 1, 1, 8, 8)
			d.FreePixmap(pix)
			d.FreeGC(gc)

			// Cross-client send traffic to the neighbor's top-level.
			d.SendEvent(tops[(i+1)%clients], xproto.StructureNotifyMask,
				&xproto.Event{Type: xproto.ClientMessage, Data: fmt.Sprintf("c%d r%d", i, r)})

			d.DestroyWindow(child)
		}
		if _, err := d.InternAtom(fmt.Sprintf("STRESS_CLIENT_%d", i)); err != nil {
			return fmt.Errorf("client %d: intern unique: %w", i, err)
		}
		return d.Sync()
	})

	runPhase("teardown", func(i int, d *xclient.Display) error {
		d.DestroyWindow(tops[i])
		return d.Sync()
	})

	// Everything quiesced (every client synced): counts must be exact.
	if got := s.windowCount(); got != 1 {
		t.Errorf("window count after teardown = %d, want 1 (root only)", got)
	}
	if got := s.gcs.size(); got != 0 {
		t.Errorf("gc table size = %d, want 0", got)
	}
	if got := s.pixmaps.size(); got != 0 {
		t.Errorf("pixmap table size = %d, want 0", got)
	}
	s.atomsMu.RLock()
	atomCount, nameCount := len(s.atoms), len(s.atomNames)
	s.atomsMu.RUnlock()
	wantAtoms := atomBase + len(sharedAtoms) + clients
	if atomCount != wantAtoms || nameCount != wantAtoms {
		t.Errorf("atom tables = %d/%d entries, want %d (no duplicate interning under contention)", atomCount, nameCount, wantAtoms)
	}
	s.colorsMu.RLock()
	cells := len(s.colorCells)
	s.colorsMu.RUnlock()
	if cells != len(palette) {
		t.Errorf("color cells = %d, want %d (one per distinct spec)", cells, len(palette))
	}
	for i, d := range displays {
		if errs := d.TakeErrors(); len(errs) != 0 {
			t.Errorf("client %d saw protocol errors: %v", i, errs)
		}
	}
}
