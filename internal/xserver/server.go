// Package xserver implements a simulated X11 display server. It stands in
// for the real X server the paper ran against (X11R4 on a DECstation
// 3100): clients connect over any net.Conn (in-process pipes or TCP
// between separate OS processes), speak the request/reply/event protocol
// defined in internal/xproto, and the server maintains the window tree,
// properties, atoms, selections, input focus, pointer state, and actual
// pixel contents — so screenshots like the paper's Figure 10 can be
// regenerated, and protocol traffic (the thing Tk's resource caches
// exist to reduce, §3.3) can be counted and measured.
package xserver

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/xproto"
)

// Server is a simulated X display.
//
// mu serializes all request handling: every mutable field below carries
// a "guarded by mu" annotation, and cmd/tkcheck's lock analyzer checks
// that annotated fields are only touched with mu held (or from methods
// documented "s.mu held").
type Server struct {
	mu sync.Mutex

	width, height int                     // immutable after New
	root          *window                 // the pointer is immutable; its contents are guarded by mu
	windows       map[xproto.ID]*window   // guarded by mu
	pixmaps       map[xproto.ID]*image    // guarded by mu
	gcs           map[xproto.ID]*gcontext // guarded by mu
	fonts         map[xproto.ID]*font     // guarded by mu
	cursors       map[xproto.ID]string    // guarded by mu

	atoms     map[string]xproto.Atom // guarded by mu
	atomNames map[xproto.Atom]string // guarded by mu
	nextAtom  xproto.Atom            // guarded by mu

	selections map[xproto.Atom]*selection // guarded by mu

	focus xproto.ID // guarded by mu

	pointerX   int     // guarded by mu
	pointerY   int     // guarded by mu
	buttons    uint16  // guarded by mu
	modifiers  uint16  // guarded by mu
	pointerWin *window // guarded by mu
	grabWin    *window // guarded by mu

	nextIDBase   uint32       // guarded by mu
	latency      atomic.Int64 // nanoseconds per request (or per segment)
	latModel     atomic.Int32 // LatencyModel selecting how latency is charged
	writeTimeout atomic.Int64 // nanoseconds a stalled peer may block a write
	start        time.Time    // immutable after New

	conns    map[*conn]bool // guarded by mu
	listener net.Listener   // guarded by mu
	closed   bool           // guarded by mu

	// metrics aggregates across all connections: "requests",
	// per-opcode "requests.<OpName>" counters, and the "dispatch"
	// service-time histogram. The pointer is immutable after New; the
	// registry itself is safe for concurrent use.
	metrics *obs.Registry
}

// gcontext is a server-side graphics context.
type gcontext struct {
	foreground uint32
	background uint32
	lineWidth  int
	font       xproto.ID
	owner      *conn
}

// property is a window property value.
type property struct {
	typ  xproto.Atom
	data []byte
}

// selection tracks ICCCM selection ownership.
type selection struct {
	owner *window
	time  uint32
}

// window is a server-side window.
type window struct {
	id          xproto.ID
	parent      *window
	children    []*window // bottom-to-top stacking order
	x, y        int
	w, h        int
	borderWidth int
	background  uint32
	border      uint32
	override    bool
	mapped      bool
	img         *image
	masks       map[*conn]uint32
	props       map[xproto.Atom]property
	owner       *conn
	cursor      string
}

// conn is one client connection.
type conn struct {
	s    *Server
	rw   net.Conn
	out  chan []byte
	done chan struct{}
	seq  uint64
	once sync.Once

	// metrics holds this connection's view of the same counter and
	// histogram names the server registry aggregates, plus
	// "roundtrips", "events" and "dropped". QueryCounters answers from
	// it. The pointer is immutable after ServeConn creates it.
	metrics *obs.Registry
}

// New creates a server with the given screen size.
func New(width, height int) *Server {
	s := &Server{
		width:      width,
		height:     height,
		windows:    make(map[xproto.ID]*window),
		pixmaps:    make(map[xproto.ID]*image),
		gcs:        make(map[xproto.ID]*gcontext),
		fonts:      make(map[xproto.ID]*font),
		cursors:    make(map[xproto.ID]string),
		atoms:      make(map[string]xproto.Atom),
		atomNames:  make(map[xproto.Atom]string),
		selections: make(map[xproto.Atom]*selection),
		conns:      make(map[*conn]bool),
		metrics:    obs.NewRegistry(),
		start:      time.Now(),
		nextIDBase: 0x00200000,
		nextAtom:   100,
	}
	s.writeTimeout.Store(int64(DefaultWriteTimeout))
	for a, name := range xproto.PredefinedAtoms {
		s.atoms[name] = a
		s.atomNames[a] = name
	}
	s.root = &window{
		id:         1,
		w:          width,
		h:          height,
		background: 0x5f9ea0, // the classic root-weave stand-in
		mapped:     true,
		img:        newImage(width, height),
		masks:      make(map[*conn]uint32),
		props:      make(map[xproto.Atom]property),
	}
	s.root.img.fillRect(0, 0, width, height, s.root.background)
	s.windows[1] = s.root
	s.pointerWin = s.root
	s.pointerX, s.pointerY = width/2, height/2
	return s
}

// Root returns the root window ID.
func (s *Server) Root() xproto.ID { return 1 }

// LatencyModel selects how the simulated IPC latency is charged.
type LatencyModel int32

const (
	// LatencyPerRequest charges the latency once per request, however
	// the requests arrive — the historical default, and what the
	// EXPERIMENTS.md Table II numbers use. It models a client that
	// performs a full round trip for every request.
	LatencyPerRequest LatencyModel = iota
	// LatencyPerSegment charges the latency once per wire read: a flush
	// of K pipelined requests arrives as one segment and pays the
	// latency once, not K times — the payoff the XCB cookie model (and
	// this client's SendWithReply) exists to collect.
	LatencyPerSegment
)

// SetLatency sets the simulated IPC latency applied to every request
// (or, under LatencyPerSegment, every wire segment).
func (s *Server) SetLatency(d time.Duration) { s.latency.Store(int64(d)) }

// SetLatencyModel selects how SetLatency's cost is charged. The default
// is LatencyPerRequest.
func (s *Server) SetLatencyModel(m LatencyModel) { s.latModel.Store(int32(m)) }

// DefaultWriteTimeout bounds how long a stalled peer — one that stops
// reading its end of the connection — may block the server's writer
// before the connection is declared dead and closed.
const DefaultWriteTimeout = 10 * time.Second

// SetWriteTimeout changes the stalled-peer write bound. Zero disables
// the bound (writes may block forever — only sensible in tests). Each
// severed connection increments the "stalled" counter on both the
// server registry and the connection's own.
func (s *Server) SetWriteTimeout(d time.Duration) { s.writeTimeout.Store(int64(d)) }

// Stats reports aggregate request count across all connections. It is
// a compatibility shim over Metrics(): the same number is the
// "requests" counter in the registry.
func (s *Server) Stats() (requests uint64) {
	return s.metrics.Counter("requests").Value()
}

// Metrics returns the server-wide registry: "requests" and per-opcode
// "requests.<OpName>" counters, and the "dispatch" histogram of
// request service times (decode + handle, excluding simulated latency).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// now returns the server timestamp in milliseconds.
func (s *Server) now() uint32 {
	return uint32(time.Since(s.start) / time.Millisecond)
}

// Serve accepts connections on l until the listener is closed.
func (s *Server) Serve(l net.Listener) {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return
		}
		go s.ServeConn(nc)
	}
}

// Listen starts serving on a TCP address and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go s.Serve(l)
	return l.Addr().String(), nil
}

// ConnectPipe creates an in-process connection to the server and returns
// the client end.
func (s *Server) ConnectPipe() net.Conn {
	client, server := net.Pipe()
	go s.ServeConn(server)
	return client
}

// Close shuts the server down, closing all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.close()
	}
}

// ServeConn runs the protocol on one established connection, blocking
// until it closes.
func (s *Server) ServeConn(nc net.Conn) {
	c := &conn{
		s:       s,
		rw:      nc,
		out:     make(chan []byte, 4096),
		done:    make(chan struct{}),
		metrics: obs.NewRegistry(),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = true
	base := s.nextIDBase
	s.nextIDBase += 0x00200000
	s.mu.Unlock()

	// Writer goroutine: coalesces every frame queued at wake-up time
	// into a single Write, so a burst of replies/events crosses the
	// wire as one segment (the mirror of the client's batched flush).
	// Each Write carries a deadline so a peer that stops reading cannot
	// wedge the goroutine forever: on timeout the connection is counted
	// as stalled and severed.
	go func() {
		var batch []byte
		for {
			select {
			case buf, ok := <-c.out:
				if !ok {
					return
				}
				batch = append(batch[:0], buf...)
			coalesce:
				for {
					select {
					case more, ok := <-c.out:
						if !ok {
							break coalesce
						}
						batch = append(batch, more...)
					default:
						break coalesce
					}
				}
				if to := s.writeTimeout.Load(); to > 0 {
					nc.SetWriteDeadline(time.Now().Add(time.Duration(to)))
				}
				if _, err := nc.Write(batch); err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						c.markStalled()
					}
					c.close()
					return
				}
			case <-c.done:
				return
			}
		}
	}()

	// Connection setup block.
	setup := &xproto.SetupReply{
		ResourceIDBase: base,
		Root:           s.Root(),
		Width:          uint16(s.width),
		Height:         uint16(s.height),
	}
	w := xproto.NewWriter()
	setup.Encode(w)
	c.enqueueFrame(xproto.KindReply, w.Bytes(), true)

	// Request loop. Requests are read through a buffered reader over a
	// latency-charging wrapper: under LatencyPerSegment each underlying
	// conn read (one wire segment, typically one client flush) pays the
	// simulated latency once, however many requests it carries; under
	// LatencyPerRequest the historical per-request sleep below applies.
	br := bufio.NewReaderSize(&segmentReader{s: s, conn: nc}, 64<<10)
	for {
		op, payload, err := xproto.ReadRequestFrame(br)
		if err != nil {
			break
		}
		if s.latModel.Load() == int32(LatencyPerRequest) {
			if lat := s.latency.Load(); lat > 0 {
				time.Sleep(time.Duration(lat))
			}
		}
		c.seq++
		// Counters are bumped before dispatch so a QueryCounters reply
		// includes its own request; timing wraps only decode + handle,
		// so the "dispatch" histogram measures true service time, not
		// the simulated IPC latency above.
		name := xproto.OpName(op)
		s.metrics.Counter("requests").Inc()
		s.metrics.Counter("requests." + name).Inc()
		c.metrics.Counter("requests").Inc()
		c.metrics.Counter("requests." + name).Inc()
		begin := time.Now()
		s.dispatch(c, op, payload)
		elapsed := time.Since(begin)
		s.metrics.Histogram("dispatch").Observe(elapsed)
		c.metrics.Histogram("dispatch").Observe(elapsed)
	}
	c.close()
	s.mu.Lock()
	delete(s.conns, c)
	s.cleanupConn(c)
	s.mu.Unlock()
}

func (c *conn) close() {
	c.once.Do(func() {
		close(c.done)
		c.rw.Close()
	})
}

// markStalled records that this connection was severed because the peer
// stopped draining it (a write deadline expired or the outbound queue
// stayed full past the write timeout).
func (c *conn) markStalled() {
	c.s.metrics.Counter("stalled").Inc()
	c.metrics.Counter("stalled").Inc()
}

// segmentReader counts wire segments and charges the per-segment
// simulated latency: each successful read from the underlying
// connection is one segment (one client flush, up to the buffer size),
// so K pipelined requests in one flush pay the latency once.
type segmentReader struct {
	s    *Server
	conn net.Conn
}

func (sr *segmentReader) Read(p []byte) (int, error) {
	n, err := sr.conn.Read(p)
	if n > 0 {
		sr.s.metrics.Counter("segments").Inc()
		if sr.s.latModel.Load() == int32(LatencyPerSegment) {
			if lat := sr.s.latency.Load(); lat > 0 {
				time.Sleep(time.Duration(lat))
			}
		}
	}
	return n, err
}

// enqueueFrame frames and queues a server-to-client message. Replies and
// errors must not be dropped; events may be dropped under extreme
// backpressure rather than deadlocking the server. Even mustDeliver
// waits are bounded: if the outbound queue stays full past the write
// timeout the peer has stopped draining it, and the connection is
// counted as stalled and severed rather than wedging the dispatcher.
func (c *conn) enqueueFrame(kind byte, payload []byte, mustDeliver bool) {
	buf := make([]byte, 0, 5+len(payload))
	buf = append(buf, kind)
	buf = append(buf, byte(len(payload)>>24), byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
	buf = append(buf, payload...)
	if mustDeliver {
		// Fast path: queue space available or connection already gone.
		select {
		case c.out <- buf:
			return
		case <-c.done:
			return
		default:
		}
		to := c.s.writeTimeout.Load()
		if to <= 0 {
			select {
			case c.out <- buf:
			case <-c.done:
			}
			return
		}
		timer := time.NewTimer(time.Duration(to))
		defer timer.Stop()
		select {
		case c.out <- buf:
		case <-c.done:
		case <-timer.C:
			c.markStalled()
			c.close()
		}
		return
	}
	select {
	case c.out <- buf:
	case <-c.done:
	default:
		c.metrics.Counter("dropped").Inc()
	}
}

// reply sends a reply for the current request.
func (c *conn) reply(encode func(w *xproto.Writer)) {
	c.metrics.Counter("roundtrips").Inc()
	w := xproto.NewWriter()
	w.PutU64(c.seq)
	encode(w)
	c.enqueueFrame(xproto.KindReply, w.Bytes(), true)
}

// protoError sends an error message for the current request.
func (c *conn) protoError(format string, args ...any) {
	w := xproto.NewWriter()
	w.PutU64(c.seq)
	w.PutString(fmt.Sprintf(format, args...))
	c.enqueueFrame(xproto.KindError, w.Bytes(), true)
}

// sendEvent delivers an event to this connection.
func (c *conn) sendEvent(ev *xproto.Event) {
	c.metrics.Counter("events").Inc()
	w := xproto.NewWriter()
	ev.Encode(w)
	c.enqueueFrame(xproto.KindEvent, w.Bytes(), false)
}

// dispatch decodes and executes one request under the server lock.
func (s *Server) dispatch(c *conn, op uint16, payload []byte) {
	req := xproto.NewRequest(op)
	if req == nil {
		c.protoError("bad request opcode %d", op)
		return
	}
	r := xproto.NewReader(payload)
	req.Decode(r)
	if r.Err() != nil {
		c.protoError("malformed request %d: %v", op, r.Err())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handle(c, req)
}

// cleanupConn releases all resources owned by a departed client: its
// windows are destroyed (as X does), its GCs, fonts and pixmaps freed,
// its event-mask entries removed, and its selections cleared. Called with s.mu held.
func (s *Server) cleanupConn(c *conn) {
	// Destroy windows owned by the connection, top-level first.
	var owned []*window
	for _, w := range s.windows {
		if w.owner == c && w.parent == s.root {
			owned = append(owned, w)
		}
	}
	for _, w := range owned {
		s.destroyWindow(w)
	}
	// Any remaining windows deeper in other clients' trees.
	for _, w := range s.windows {
		if w.owner == c && w != s.root {
			s.destroyWindow(w)
		}
	}
	for id, gc := range s.gcs {
		if gc.owner == c {
			delete(s.gcs, id)
		}
	}
	for _, w := range s.windows {
		delete(w.masks, c)
	}
	for sel, o := range s.selections {
		if o.owner != nil && o.owner.owner == c {
			delete(s.selections, sel)
		}
	}
}
