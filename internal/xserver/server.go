// Package xserver implements a simulated X11 display server. It stands in
// for the real X server the paper ran against (X11R4 on a DECstation
// 3100): clients connect over any net.Conn (in-process pipes or TCP
// between separate OS processes), speak the request/reply/event protocol
// defined in internal/xproto, and the server maintains the window tree,
// properties, atoms, selections, input focus, pointer state, and actual
// pixel contents — so screenshots like the paper's Figure 10 can be
// regenerated, and protocol traffic (the thing Tk's resource caches
// exist to reduce, §3.3) can be counted and measured.
package xserver

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/xproto"
)

// Server is a simulated X display.
//
// Request handling is locked per subsystem, not globally, so independent
// clients dispatch in parallel (docs/architecture.md, "The locking
// model"). Every mutable field carries a "guarded by <mutex>" annotation
// naming its subsystem mutex, and cmd/tkcheck's lock analyzer checks
// that annotated fields are only touched with that mutex held (or from
// methods documented "s.<mutex> held"). The subsystem mutexes are
// obs.TimedMutex/TimedRWMutex, so every acquisition wait lands in a
// "lockwait.<subsystem>" histogram.
//
// Lock order (always acquire left before right, release before taking a
// peer): treeMu → pixmap.mu → {gcs, pixmaps, cursors shard locks,
// fontsMu, colorsMu, atomsMu}. The right-hand group are leaves — no
// server mutex is ever acquired while one of them is held — except that
// two pixmap locks may nest in ascending-ID order (CopyArea between
// pixmaps). connsMu is independent: never held together with any other
// server mutex.
//
// Per-tile render state needs no lock class of its own: a tiled image's
// slab pointers, versions and copy-on-write shared/dirty flags are all
// guarded by the lock of the drawable that owns the image — treeMu for
// window pixels, the pixmap's mu for pixmap pixels — exactly as the
// flat pixel buffers were. Screenshot snapshots alias slabs under that
// lock and are immutable afterwards (writers clone shared slabs instead
// of mutating them), so composing and packing a snapshot takes no lock
// at all; and the render worker pool's fill jobs run while their
// submitter holds the drawable lock, touching disjoint tiles, acquiring
// nothing (see render.go).
//
// The declaration below is the machine-readable form of that order;
// cmd/tkcheck's lock-order analyzer checks every acquisition edge in
// the package against it (resShard.mu is the class of all three
// resource tables' shard locks, and the ascending-ID pixmap pair is
// the one sanctioned same-class nesting).
//
// lock-order: treeMu -> pixmap.mu -> {atomsMu, fontsMu, colorsMu, resShard.mu}
// lock-order: connsMu
type Server struct {
	width, height int     // immutable after New
	root          *window // the pointer is immutable; its contents are guarded by treeMu

	// treeMu is the window subsystem: the window tree and every
	// window's fields and pixels, input state (focus, pointer, grabs)
	// and selection ownership — the state whose invariants span
	// multiple windows and so cannot be sharded.
	treeMu     obs.TimedMutex
	windows    map[xproto.ID]*window      // guarded by treeMu
	selections map[xproto.Atom]*selection // guarded by treeMu
	focus      xproto.ID                  // guarded by treeMu
	pointerX   int                        // guarded by treeMu
	pointerY   int                        // guarded by treeMu
	buttons    uint16                     // guarded by treeMu
	modifiers  uint16                     // guarded by treeMu
	pointerWin *window                    // guarded by treeMu
	grabWin    *window                    // guarded by treeMu

	// Atoms are intern-once, read-forever (exactly the workload Tk's
	// resource names generate): reads take the read lock, a miss
	// upgrades to the write lock and re-checks.
	atomsMu   obs.TimedRWMutex
	atoms     map[string]xproto.Atom // guarded by atomsMu
	atomNames map[xproto.Atom]string // guarded by atomsMu
	nextAtom  xproto.Atom            // guarded by atomsMu

	// Fonts: the map is read-mostly; font objects themselves are
	// immutable once opened, so they may be used after release.
	fontsMu obs.TimedRWMutex
	fonts   map[xproto.ID]*font // guarded by fontsMu

	// Colors: interned cells for resolved color specs (the stand-in for
	// colormap cell allocation). Bounded by the distinct colors clients
	// actually use.
	colorsMu   obs.TimedRWMutex
	colorCells map[string]uint32 // guarded by colorsMu

	// Per-client resources live in sharded tables: clients touching
	// disjoint IDs take disjoint shard locks. Table pointers are
	// immutable after New.
	gcs     *resTable[*gcontext]
	pixmaps *resTable[*pixmap]
	cursors *resTable[string]

	nextIDBase   atomic.Uint32 // next connection's resource-ID range base
	latency      atomic.Int64  // nanoseconds per request (or per segment)
	latModel     atomic.Int32  // LatencyModel selecting how latency is charged
	writeTimeout atomic.Int64  // nanoseconds a stalled peer may block a write
	wireV2       atomic.Bool   // accept wire-protocol-v2 upgrades (SetWireV2)
	start        time.Time     // immutable after New

	// Resource quota (SetQuota, docs/farm.md): limits and live usage are
	// atomics, so allocating handlers CAS-reserve against the limit with
	// no new lock and every free path (FreeGC/FreePixmap, DestroyWindow,
	// cleanupConn's sweeps) releases what the allocation reserved. A zero
	// limit means unlimited.
	quotaWindows     atomic.Int64
	quotaPixmapBytes atomic.Int64
	quotaGCs         atomic.Int64
	usedWindows      atomic.Int64
	usedPixmapBytes  atomic.Int64
	usedGCs          atomic.Int64

	// rollup aggregation (SetRollup): when this server is one session of
	// a farm, the farm's registry is attached here and the hot dispatch
	// path bumps these pre-resolved handles alongside the per-session
	// metrics, so /metrics and /slo over the farm registry see every
	// tenant's traffic under the standard names. All three are set before
	// the server accepts its first connection and immutable afterwards.
	rollup         *obs.Registry
	rollupRequests *obs.Counter
	rollupDispatch *obs.Histogram

	// activity, when non-nil, receives a unix-nano stamp per dispatched
	// request: the farm points it at the owning session's last-active
	// clock so the idle-eviction sweeper sees tenant activity without the
	// dispatch path knowing the farm exists. Set before serving,
	// immutable afterwards.
	activity *atomic.Int64

	// Connection registry, independent of the dispatch locks above.
	connsMu  obs.TimedMutex
	conns    map[*conn]bool // guarded by connsMu
	listener net.Listener   // guarded by connsMu
	closed   bool           // guarded by connsMu

	// metrics aggregates across all connections: "requests",
	// per-opcode "requests.<OpName>" counters, the "dispatch"
	// service-time histogram, and the per-subsystem "lockwait.*"
	// histograms. The span layer adds "trace.sampled" (dispatches picked
	// for span recording) and "trace.spans" (spans recorded). The
	// pointer is immutable after New; the registry itself is safe for
	// concurrent use.
	metrics *obs.Registry

	// tracer, when set, records a server.dispatch span (with per-subsystem
	// lock waits attributed) for sampled requests. Atomic so SetTracer
	// may race dispatch.
	tracer atomic.Pointer[trace.Tracer]

	// lockNames maps each lockwait histogram back to its subsystem name,
	// so a sampled dispatch can label the waits its collector gathered.
	// Immutable after New.
	lockNames map[*obs.Histogram]string

	// render is the render pipeline's pre-resolved slice of the metrics
	// registry: tile damage/COW/snapshot counters and the per-primitive
	// service-time histograms. Immutable after New.
	render *renderMetrics
}

// gcontext is a server-side graphics context. Fields are mutated only
// under the gcs shard lock holding it (applyGC runs inside
// resTable.with); dispatch paths that draw take a value snapshot under
// that lock and work from the copy.
type gcontext struct {
	foreground uint32
	background uint32
	lineWidth  int
	font       xproto.ID
	owner      *conn
}

// pixmap is a server-side off-screen drawable. The img pointer and the
// image's dimensions are immutable after CreatePixmap; the pixel
// contents are guarded by mu, so clients drawing into distinct pixmaps
// never contend (and never touch treeMu at all).
type pixmap struct {
	mu    obs.TimedMutex
	img   *image // the pointer is immutable; pixel contents are guarded by mu
	bytes int64  // nominal quota cost (w·h·4 at create), immutable
	owner *conn  // creating connection, immutable; cleanupConn sweeps by it
}

// with runs fn on the pixmap's pixels under its lock.
func (p *pixmap) with(fn func(im *image)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(p.img)
}

// property is a window property value.
type property struct {
	typ  xproto.Atom
	data []byte
}

// selection tracks ICCCM selection ownership.
type selection struct {
	owner *window
	time  uint32
}

// window is a server-side window. All fields are guarded by the
// server's treeMu (windows are reached only through Server.windows or
// the tree itself).
type window struct {
	id          xproto.ID
	parent      *window
	children    []*window // bottom-to-top stacking order
	x, y        int
	w, h        int
	borderWidth int
	background  uint32
	border      uint32
	override    bool
	mapped      bool
	img         *image
	masks       map[*conn]uint32
	props       map[xproto.Atom]property
	owner       *conn
	cursor      string
}

// conn is one client connection.
type conn struct {
	s    *Server
	rw   net.Conn
	out  chan *[]byte
	done chan struct{}
	seq  uint64
	once sync.Once

	// Wire protocol v2 state (docs/pipelining.md, "Wire protocol v2").
	// The receive half — wireRx, the delta cache and the decode
	// scratch — is owned by the request-loop goroutine exclusively and
	// needs no lock. wireCaps is written there too, before the upgrade
	// sentinel is queued; the writer goroutine reads it only after
	// dequeuing the sentinel, so the channel orders the two. Codec
	// state lives and dies with the conn: session teardown (farm
	// eviction, Server.Close) severs the connection and drops it.
	wireRx   bool
	wireCaps byte
	rxCache  *xproto.DeltaCache
	rxSeg    []byte

	// metrics holds this connection's view of the same counter and
	// histogram names the server registry aggregates, plus
	// "roundtrips", "events" and "dropped". QueryCounters answers from
	// it. The pointer is immutable after ServeConn creates it.
	metrics *obs.Registry
}

// New creates a server with the given screen size.
func New(width, height int) *Server {
	s := &Server{
		width:      width,
		height:     height,
		windows:    make(map[xproto.ID]*window),
		fonts:      make(map[xproto.ID]*font),
		atoms:      make(map[string]xproto.Atom),
		atomNames:  make(map[xproto.Atom]string),
		colorCells: make(map[string]uint32),
		selections: make(map[xproto.Atom]*selection),
		conns:      make(map[*conn]bool),
		metrics:    obs.NewRegistry(),
		start:      time.Now(),
		nextAtom:   100,
	}
	s.nextIDBase.Store(0x00200000)
	s.wireV2.Store(true)
	s.lockNames = make(map[*obs.Histogram]string)
	for _, n := range []string{"tree", "atoms", "fonts", "colors", "conns", "gcs", "pixmaps", "cursors"} {
		s.lockNames[s.metrics.Histogram("lockwait."+n)] = n
	}
	s.treeMu.Instrument(s.metrics.Histogram("lockwait.tree"))
	s.atomsMu.Instrument(s.metrics.Histogram("lockwait.atoms"))
	s.fontsMu.Instrument(s.metrics.Histogram("lockwait.fonts"))
	s.colorsMu.Instrument(s.metrics.Histogram("lockwait.colors"))
	s.connsMu.Instrument(s.metrics.Histogram("lockwait.conns"))
	s.gcs = newResTable[*gcontext](s.metrics.Histogram("lockwait.gcs"))
	s.pixmaps = newResTable[*pixmap](s.metrics.Histogram("lockwait.pixmaps"))
	s.cursors = newResTable[string](s.metrics.Histogram("lockwait.cursors"))
	s.writeTimeout.Store(int64(DefaultWriteTimeout))
	s.render = newRenderMetrics(s.metrics)
	for a, name := range xproto.PredefinedAtoms {
		s.atoms[name] = a
		s.atomNames[a] = name
	}
	s.root = &window{
		id:         1,
		w:          width,
		h:          height,
		background: 0x5f9ea0, // the classic root-weave stand-in
		mapped:     true,
		img:        newImageM(width, height, s.render),
		masks:      make(map[*conn]uint32),
		props:      make(map[xproto.Atom]property),
	}
	s.root.img.fillRect(0, 0, width, height, s.root.background)
	s.windows[1] = s.root
	s.pointerWin = s.root
	s.pointerX, s.pointerY = width/2, height/2
	return s
}

// Root returns the root window ID.
func (s *Server) Root() xproto.ID { return 1 }

// LatencyModel selects how the simulated IPC latency is charged.
type LatencyModel int32

const (
	// LatencyPerRequest charges the latency once per request, however
	// the requests arrive — the historical default, and what the
	// EXPERIMENTS.md Table II numbers use. It models a client that
	// performs a full round trip for every request.
	LatencyPerRequest LatencyModel = iota
	// LatencyPerSegment charges the latency once per wire read: a flush
	// of K pipelined requests arrives as one segment and pays the
	// latency once, not K times — the payoff the XCB cookie model (and
	// this client's SendWithReply) exists to collect.
	LatencyPerSegment
)

// SetLatency sets the simulated IPC latency applied to every request
// (or, under LatencyPerSegment, every wire segment).
func (s *Server) SetLatency(d time.Duration) { s.latency.Store(int64(d)) }

// SetLatencyModel selects how SetLatency's cost is charged. The default
// is LatencyPerRequest.
func (s *Server) SetLatencyModel(m LatencyModel) { s.latModel.Store(int32(m)) }

// DefaultWriteTimeout bounds how long a stalled peer — one that stops
// reading its end of the connection — may block the server's writer
// before the connection is declared dead and closed.
const DefaultWriteTimeout = 10 * time.Second

// SetWriteTimeout changes the stalled-peer write bound. Zero disables
// the bound (writes may block forever — only sensible in tests). Each
// severed connection increments the "stalled" counter on both the
// server registry and the connection's own.
func (s *Server) SetWriteTimeout(d time.Duration) { s.writeTimeout.Store(int64(d)) }

// SetWireV2 sets whether the server accepts wire-protocol-v2 upgrades
// (the default). With false, every OpUpgradeWire is answered with a
// version-1 ack and clients fall back to v1 framing transparently —
// the knob the negotiation-matrix test and `xsimd -wire v1` use.
// Affects connections negotiated after the call.
func (s *Server) SetWireV2(on bool) { s.wireV2.Store(on) }

// Stats reports aggregate request count across all connections. It is
// a compatibility shim over Metrics(): the same number is the
// "requests" counter in the registry.
func (s *Server) Stats() (requests uint64) {
	return s.metrics.Counter("requests").Value()
}

// Metrics returns the server-wide registry: "requests" and per-opcode
// "requests.<OpName>" counters, the "dispatch" histogram of request
// service times (decode + handle, excluding simulated latency), and the
// "lockwait.<subsystem>" histograms of mutex acquisition waits.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// SetTracer attaches (or, with nil, detaches) a span tracer. Give the
// server and its clients tracers with the same sampling interval and
// both sides record spans for the same requests — each connection's
// request sequence numbers advance in lockstep with the client's own
// numbering (see internal/obs/trace).
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer.Store(t) }

// SetRollup attaches an aggregate registry (a farm's) that the dispatch
// path bumps alongside this server's own: the standard "requests"
// counter and "dispatch" histogram names, pre-resolved here so the hot
// path pays two atomic ops, not a map lookup. Quota denials roll up too
// (quota.go). Call before the server accepts its first connection.
func (s *Server) SetRollup(reg *obs.Registry) {
	s.rollup = reg
	s.rollupRequests = reg.Counter("requests")
	s.rollupDispatch = reg.Histogram("dispatch")
}

// setActivity points the per-request activity stamp at the given clock
// (the farm's per-session last-active time). Call before the server
// accepts its first connection.
func (s *Server) setActivity(clock *atomic.Int64) { s.activity = clock }

// now returns the server timestamp in milliseconds.
func (s *Server) now() uint32 {
	return uint32(time.Since(s.start) / time.Millisecond)
}

// Serve accepts connections on l until the listener is closed.
func (s *Server) Serve(l net.Listener) {
	s.connsMu.Lock()
	s.listener = l
	s.connsMu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return
		}
		go s.ServeConn(nc)
	}
}

// Listen starts serving on a TCP address and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go s.Serve(l)
	return l.Addr().String(), nil
}

// ConnectPipe creates an in-process connection to the server and returns
// the client end.
func (s *Server) ConnectPipe() net.Conn {
	client, server := net.Pipe()
	go s.ServeConn(server)
	return client
}

// Close shuts the server down, closing all connections.
func (s *Server) Close() {
	s.connsMu.Lock()
	s.closed = true
	l := s.listener
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connsMu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.close()
	}
}

// framePool recycles outbound frame buffers: enqueueFrame fills one,
// the writer goroutine (or a drop path) returns it. Pooled as *[]byte
// so channel sends and puts move one pointer, not a slice header.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// ServeConn runs the protocol on one established connection, blocking
// until it closes.
func (s *Server) ServeConn(nc net.Conn) {
	c := &conn{
		s:       s,
		rw:      nc,
		out:     make(chan *[]byte, 4096),
		done:    make(chan struct{}),
		metrics: obs.NewRegistry(),
	}
	s.connsMu.Lock()
	if s.closed {
		s.connsMu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = true
	s.connsMu.Unlock()
	base := s.nextIDBase.Add(0x00200000) - 0x00200000

	// Writer goroutine: coalesces every frame queued at wake-up time
	// into a single Write, so a burst of replies/events crosses the
	// wire as one segment (the mirror of the client's batched flush).
	// Each Write carries a deadline so a peer that stops reading cannot
	// wedge the goroutine forever: on timeout the connection is counted
	// as stalled and severed. Frame buffers return to the pool here,
	// after the batch copy.
	//
	// Once the request loop accepts a v2 upgrade it queues the
	// wireTxSentinel; everything dequeued before the sentinel is written
	// in v1 framing (the setup block and the upgrade ack must be), and
	// every batch after it is wrapped in a checksummed — and, when the
	// client asked for it, compressed — KindWireSeg envelope. Small
	// batches stay unwrapped: the v2 client accepts both framings on the
	// same stream (no delta runs in this direction, so there is no cache
	// to keep in sync).
	go func() {
		var batch, seg []byte
		v2 := false
		wireSegs := s.metrics.Counter("wire.segments.v2")
		wireRaw := s.metrics.Counter("wire.bytes.raw")
		wireWire := s.metrics.Counter("wire.bytes.wire")
		wireSkip := s.metrics.Counter("wire.compress.skipped")
		for {
			select {
			case bp, ok := <-c.out:
				if !ok {
					return
				}
				if bp == wireTxSentinel {
					v2 = true
					continue
				}
				batch = append(batch[:0], *bp...)
				framePool.Put(bp)
				sentinel := false
			coalesce:
				for {
					select {
					case more, ok := <-c.out:
						if !ok {
							break coalesce
						}
						if more == wireTxSentinel {
							// Flush what precedes the upgrade in the old
							// framing; the new framing starts next batch.
							sentinel = true
							break coalesce
						}
						batch = append(batch, *more...)
						framePool.Put(more)
					default:
						break coalesce
					}
				}
				out := batch
				wireRaw.Add(uint64(len(batch)))
				if v2 && len(batch) >= wireWrapMin {
					tryCompress := c.wireCaps&xproto.WireCapCompress != 0
					var compressed bool
					seg, compressed = xproto.AppendWireSegServerFrame(seg[:0], batch, tryCompress)
					wireSegs.Inc()
					if tryCompress && !compressed {
						wireSkip.Inc()
					}
					out = seg
				}
				wireWire.Add(uint64(len(out)))
				if to := s.writeTimeout.Load(); to > 0 {
					nc.SetWriteDeadline(time.Now().Add(time.Duration(to)))
				}
				if _, err := nc.Write(out); err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						c.markStalled()
					}
					c.close()
					return
				}
				if sentinel {
					v2 = true
				}
			case <-c.done:
				return
			}
		}
	}()

	// Connection setup block.
	setup := &xproto.SetupReply{
		ResourceIDBase: base,
		Root:           s.Root(),
		Width:          uint16(s.width),
		Height:         uint16(s.height),
	}
	w := xproto.AcquireWriter()
	setup.Encode(w)
	c.enqueueFrame(xproto.KindReply, w.Bytes(), true)
	xproto.ReleaseWriter(w)

	// Request loop. Requests are read through a buffered reader over a
	// latency-charging wrapper: under LatencyPerSegment each underlying
	// conn read (one wire segment, typically one client flush) pays the
	// simulated latency once, however many requests it carries; under
	// LatencyPerRequest the historical per-request sleep below applies.
	// The payload scratch buffer is reused across requests (safe: every
	// request Decode copies what it retains — see ReadRequestFrameInto).
	br := bufio.NewReaderSize(&segmentReader{s: s, conn: nc}, 64<<10)
	var rbuf []byte
loop:
	for {
		op, payload, err := xproto.ReadRequestFrameInto(br, rbuf)
		if err != nil {
			break
		}
		rbuf = payload
		switch op {
		case xproto.OpAttachSession:
			// The farm consumes the attach handshake before the request
			// loop ever starts (Farm.ServeConn); one arriving here means a
			// session-aware client attached a plain single-display server,
			// which is already the display it asked for. Consume the frame
			// without assigning it a sequence number — the client wrote it
			// before its Display existed and does not count it either, so
			// skipping keeps both sides' numbering in lockstep.
			continue
		case xproto.OpUpgradeWire:
			// The v2 capability exchange follows the attach idiom: no
			// sequence number on either side (the client writes it before
			// its Display exists), answered out-of-band with a KindWireAck.
			s.handleUpgradeWire(c, payload)
			continue
		case xproto.OpWireSeg:
			// A v2 segment of batched requests. Decode failure is fatal:
			// the envelope checksum or the delta cache no longer vouches
			// for the stream, so sever rather than dispatch garbage.
			if err := s.serveWireSeg(c, payload); err != nil {
				s.metrics.Counter("wire.decode.errors").Inc()
				c.metrics.Counter("wire.decode.errors").Inc()
				c.protoError("wire: %v", err)
				break loop
			}
			continue
		}
		s.serveRequest(c, op, payload)
	}
	c.close()
	s.connsMu.Lock()
	delete(s.conns, c)
	s.connsMu.Unlock()
	s.cleanupConn(c)
}

// serveRequest runs the full per-request pipeline — simulated
// per-request latency, sequence accounting, metrics, span sampling,
// dispatch and service-time histograms — for one decoded request frame,
// whether it arrived bare on the wire or inside a v2 segment. Inner
// frames of a segment therefore behave exactly like v1 requests:
// identical sequence numbering (the lockstep span sampling relies on)
// and identical LatencyPerRequest semantics.
func (s *Server) serveRequest(c *conn, op uint16, payload []byte) {
	if s.latModel.Load() == int32(LatencyPerRequest) {
		if lat := s.latency.Load(); lat > 0 {
			time.Sleep(time.Duration(lat))
		}
	}
	c.seq++
	// Counters are bumped before dispatch so a QueryCounters reply
	// includes its own request; timing wraps only decode + handle,
	// so the "dispatch" histogram measures true service time, not
	// the simulated IPC latency above.
	name := xproto.OpName(op)
	s.metrics.Counter("requests").Inc()
	s.metrics.Counter("requests." + name).Inc()
	c.metrics.Counter("requests").Inc()
	c.metrics.Counter("requests." + name).Inc()
	if s.rollupRequests != nil {
		s.rollupRequests.Inc()
	}
	begin := time.Now()
	if a := s.activity; a != nil {
		a.Store(begin.UnixNano())
	}
	var elapsed time.Duration
	if tr := s.tracer.Load(); tr != nil && tr.Sampled(c.seq) {
		// Sampled dispatch: collect this goroutine's contended lock
		// waits (dispatch runs synchronously here, so every wait the
		// collector sees belongs to this request) and attribute them
		// to the span by subsystem.
		s.metrics.Counter("trace.sampled").Inc()
		span := trace.Span{
			Seq: c.seq, Name: "server.dispatch", Side: "server",
			Op: name, Start: begin.UnixNano(),
		}
		remove := obs.SetWaitCollector(func(h *obs.Histogram, waitNs int64) {
			key := "lockwait.other" // untimed mutexes (e.g. per-pixmap locks)
			if n, ok := s.lockNames[h]; ok {
				key = "lockwait." + n
			}
			for i := range span.Args {
				if span.Args[i].Key == key {
					span.Args[i].Val += waitNs
					return
				}
			}
			span.Args = append(span.Args, trace.Arg{Key: key, Val: waitNs})
		})
		s.dispatch(c, op, payload)
		remove()
		elapsed = time.Since(begin)
		span.Dur = int64(elapsed)
		tr.Record(span)
		s.metrics.Counter("trace.spans").Inc()
	} else {
		s.dispatch(c, op, payload)
		elapsed = time.Since(begin)
	}
	s.metrics.Histogram("dispatch").Observe(elapsed)
	c.metrics.Histogram("dispatch").Observe(elapsed)
	if s.rollupDispatch != nil {
		s.rollupDispatch.Observe(elapsed)
	}
}

// wireWrapMin is the smallest outbound batch worth wrapping in a v2
// segment envelope: below it the envelope overhead exceeds any win, and
// the v2 client accepts unwrapped v1 frames on the same stream.
const wireWrapMin = 128

// wireTxSentinel is the writer-goroutine signal that the v2 upgrade was
// accepted: frames queued before it cross in v1 framing, batches after
// it are wrapped (see ServeConn's writer). The pointer identity is the
// signal; the pointee is never touched.
var wireTxSentinel = new([]byte)

// handleUpgradeWire answers the OpUpgradeWire capability exchange. Like
// the attach handshake it carries no sequence number on either side.
// The ack ([u8 version][u8 caps]) is queued behind the setup block that
// ServeConn already enqueued, so the client always reads setup first;
// the tx-upgrade sentinel is queued after the ack, so the ack itself
// still crosses in v1 framing.
func (s *Server) handleUpgradeWire(c *conn, payload []byte) {
	var req xproto.UpgradeWireReq
	r := xproto.NewReader(payload)
	req.Decode(r)
	accept := r.Err() == nil && req.Version >= 2 && s.wireV2.Load()
	ver, caps := byte(1), byte(0)
	if accept {
		ver = 2
		caps = req.Caps & (xproto.WireCapCompress | xproto.WireCapDelta)
		c.wireRx = true
		c.wireCaps = caps
		c.rxCache = xproto.NewDeltaCache()
	}
	w := xproto.AcquireWriter()
	w.PutU8(ver)
	w.PutU8(caps)
	c.enqueueFrame(xproto.KindWireAck, w.Bytes(), true)
	xproto.ReleaseWriter(w)
	if accept {
		c.enqueueBuf(wireTxSentinel, true, false)
	}
}

// serveWireSeg decodes one v2 segment and serves each inner request
// through the standard pipeline. Any error means the stream can no
// longer be trusted (checksum mismatch, cache desync, torn framing) and
// the caller severs the connection — corruption degrades to a clean
// connection loss, never to a garbled request reaching a handler.
func (s *Server) serveWireSeg(c *conn, payload []byte) error {
	if !c.wireRx {
		return fmt.Errorf("v2 segment before a negotiated upgrade")
	}
	raw, scratch, err := xproto.DecodeSegmentPayload(payload, c.rxSeg)
	c.rxSeg = scratch
	if err != nil {
		return err
	}
	return c.rxCache.DecodeRequestSegment(raw, func(op uint16, pl []byte) error {
		switch op {
		case xproto.OpAttachSession, xproto.OpUpgradeWire, xproto.OpWireSeg:
			// Handshake opcodes are pre-setup, outer-framing-only; nested
			// inside a segment they can only be stream damage.
			return fmt.Errorf("handshake opcode %s inside a v2 segment", xproto.OpName(op))
		}
		s.serveRequest(c, op, pl)
		return nil
	})
}

func (c *conn) close() {
	c.once.Do(func() {
		close(c.done)
		c.rw.Close()
	})
}

// markStalled records that this connection was severed because the peer
// stopped draining it (a write deadline expired or the outbound queue
// stayed full past the write timeout).
func (c *conn) markStalled() {
	c.s.metrics.Counter("stalled").Inc()
	c.metrics.Counter("stalled").Inc()
}

// segmentReader counts wire segments and charges the per-segment
// simulated latency: each successful read from the underlying
// connection is one segment (one client flush, up to the buffer size),
// so K pipelined requests in one flush pay the latency once. The sleep
// happens on the connection's own read goroutine with no server lock
// held, so concurrent clients overlap their latency.
type segmentReader struct {
	s    *Server
	conn net.Conn
}

func (sr *segmentReader) Read(p []byte) (int, error) {
	n, err := sr.conn.Read(p)
	if n > 0 {
		sr.s.metrics.Counter("segments").Inc()
		if sr.s.latModel.Load() == int32(LatencyPerSegment) {
			if lat := sr.s.latency.Load(); lat > 0 {
				time.Sleep(time.Duration(lat))
			}
		}
	}
	return n, err
}

// enqueueFrame frames and queues a server-to-client message into a
// pooled buffer (ownership passes to the writer goroutine on send, and
// returns to the pool here on every non-delivery path). Replies and
// errors must not be dropped; events may be dropped under extreme
// backpressure rather than deadlocking the server. Even mustDeliver
// waits are bounded: if the outbound queue stays full past the write
// timeout the peer has stopped draining it, and the connection is
// counted as stalled and severed rather than wedging the dispatcher.
func (c *conn) enqueueFrame(kind byte, payload []byte, mustDeliver bool) {
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], kind)
	buf = append(buf, byte(len(payload)>>24), byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
	buf = append(buf, payload...)
	*bp = buf
	c.enqueueBuf(bp, mustDeliver, true)
}

// enqueueBuf delivers one buffer pointer to the writer goroutine with
// enqueueFrame's backpressure rules; pooled buffers are returned to the
// pool on every non-delivery path (the tx-upgrade sentinel is not
// pooled).
func (c *conn) enqueueBuf(bp *[]byte, mustDeliver, pooled bool) {
	release := func() {
		if pooled {
			framePool.Put(bp)
		}
	}
	if mustDeliver {
		// Fast path: queue space available or connection already gone.
		select {
		case c.out <- bp:
			return
		case <-c.done:
			release()
			return
		default:
		}
		to := c.s.writeTimeout.Load()
		if to <= 0 {
			select {
			case c.out <- bp:
			case <-c.done:
				release()
			}
			return
		}
		timer := time.NewTimer(time.Duration(to))
		defer timer.Stop()
		select {
		case c.out <- bp:
		case <-c.done:
			release()
		case <-timer.C:
			release()
			c.markStalled()
			c.close()
		}
		return
	}
	select {
	case c.out <- bp:
	case <-c.done:
		release()
	default:
		release()
		c.metrics.Counter("dropped").Inc()
	}
}

// reply sends a reply for the current request. The Writer is pooled:
// enqueueFrame copies the encoded bytes into the outbound frame before
// the writer is released, so the hot reply path allocates nothing.
func (c *conn) reply(encode func(w *xproto.Writer)) {
	c.metrics.Counter("roundtrips").Inc()
	w := xproto.AcquireWriter()
	w.PutU64(c.seq)
	encode(w)
	c.enqueueFrame(xproto.KindReply, w.Bytes(), true)
	xproto.ReleaseWriter(w)
}

// protoError sends an error message for the current request.
func (c *conn) protoError(format string, args ...any) {
	w := xproto.AcquireWriter()
	w.PutU64(c.seq)
	w.PutString(fmt.Sprintf(format, args...))
	c.enqueueFrame(xproto.KindError, w.Bytes(), true)
	xproto.ReleaseWriter(w)
}

// sendEvent delivers an event to this connection.
func (c *conn) sendEvent(ev *xproto.Event) {
	c.metrics.Counter("events").Inc()
	w := xproto.AcquireWriter()
	ev.Encode(w)
	c.enqueueFrame(xproto.KindEvent, w.Bytes(), false)
	xproto.ReleaseWriter(w)
}

// dispatch decodes and executes one request. Locking is per subsystem,
// inside handle and the handlers it calls — there is no server-wide
// lock, so requests from different clients that touch different
// subsystems (or different shards of one) run in parallel.
func (s *Server) dispatch(c *conn, op uint16, payload []byte) {
	req := xproto.NewRequest(op)
	if req == nil {
		c.protoError("bad request opcode %d", op)
		return
	}
	r := xproto.NewReader(payload)
	req.Decode(r)
	if r.Err() != nil {
		c.protoError("malformed request %d: %v", op, r.Err())
		return
	}
	s.handle(c, req)
}

// cleanupConn releases all resources owned by a departed client: its
// windows are destroyed (as X does), its GCs and pixmaps freed, its
// event-mask entries removed, and its selections cleared. Every release
// returns its quota reservation, so after the last connection of a
// session disconnects QuotaUsage reports zero across the board — the
// reconciliation invariant the farm bench asserts on teardown.
func (s *Server) cleanupConn(c *conn) {
	s.treeMu.Lock()
	// Collect first, destroy second: destroyWindow mutates s.windows
	// (and detaches whole subtrees), so destroying while ranging over
	// the map would visit it mid-mutation. Top-level windows go first
	// (X semantics: the visible tree comes down before orphans deeper
	// in other clients' trees); the liveness re-check skips windows an
	// earlier destroy already took down with their ancestor.
	var topLevel, nested []*window
	for _, w := range s.windows {
		if w.owner != c || w == s.root {
			continue
		}
		if w.parent == s.root {
			topLevel = append(topLevel, w)
		} else {
			nested = append(nested, w)
		}
	}
	for _, w := range append(topLevel, nested...) {
		if s.windows[w.id] == w {
			s.destroyWindow(w)
		}
	}
	for _, w := range s.windows {
		delete(w.masks, c)
	}
	for sel, o := range s.selections {
		if o.owner != nil && o.owner.owner == c {
			delete(s.selections, sel)
		}
	}
	s.treeMu.Unlock()
	s.gcs.sweep(func(gc *gcontext) bool {
		if gc.owner != c {
			return false
		}
		s.usedGCs.Add(-1)
		return true
	})
	// Pixmaps are per-client resources too: sweeping them here (by the
	// owner recorded at CreatePixmap) both releases their quota bytes and
	// frees their backing tiles when a client departs, instead of letting
	// orphaned pixmaps accumulate for the life of the server.
	s.pixmaps.sweep(func(p *pixmap) bool {
		if p.owner != c {
			return false
		}
		s.usedPixmapBytes.Add(-p.bytes)
		return true
	})
}
