package xserver

import (
	"repro/internal/obs"
	"repro/internal/xproto"
)

// resShards is the shard count for per-client resource tables. Resource
// IDs are allocated from per-connection ranges (0x00200000 apart), so
// consecutive IDs from one client spread across shards and different
// clients' IDs land on independent shards most of the time.
const resShards = 16

// resShard is one shard of a resTable: a plain map under its own
// mutex. The mutex is a TimedMutex so shard contention shows up in the
// table's lockwait histogram alongside the subsystem mutexes.
type resShard[V any] struct {
	mu obs.TimedMutex
	m  map[xproto.ID]V // guarded by mu
}

// get returns the value for id, if present.
func (sh *resShard[V]) get(id xproto.ID) (V, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[id]
	return v, ok
}

// set stores v under id, returning the value it displaced (if any) so
// overwrite paths can release whatever that value had reserved.
func (sh *resShard[V]) set(id xproto.ID, v V) (V, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.m[id]
	sh.m[id] = v
	return old, ok
}

// delete removes id.
func (sh *resShard[V]) delete(id xproto.ID) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.m, id)
}

// take removes id and returns the value it held, so free paths can
// release the value's quota reservation exactly once.
func (sh *resShard[V]) take(id xproto.ID) (V, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	return v, ok
}

// with runs fn on the value for id while the shard lock is held, so fn
// may mutate a pointee (e.g. applyGC on a *gcontext) without the value
// racing concurrent readers on the same shard. Reports whether id was
// present.
func (sh *resShard[V]) with(id xproto.ID, fn func(v V)) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[id]
	if ok {
		fn(v)
	}
	return ok
}

// sweep deletes every entry for which drop returns true.
func (sh *resShard[V]) sweep(drop func(v V) bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for id, v := range sh.m {
		if drop(v) {
			delete(sh.m, id)
		}
	}
}

// size returns the shard's entry count.
func (sh *resShard[V]) size() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.m)
}

// resTable is a sharded ID-keyed resource map (GCs, pixmaps, cursors):
// clients touching disjoint resources take disjoint shard locks and
// never contend. Shard locks are leaves in the server's lock order
// (docs/architecture.md "The locking model"): no other server mutex is
// acquired while one is held, and at most one shard lock is held at a
// time.
type resTable[V any] struct {
	shards [resShards]resShard[V]
}

// newResTable returns an empty table whose shard locks record waits
// into hist (shared across shards — the histogram is concurrent-safe).
func newResTable[V any](hist *obs.Histogram) *resTable[V] {
	t := &resTable[V]{}
	for i := range t.shards {
		t.shards[i].m = make(map[xproto.ID]V)
		t.shards[i].mu.Instrument(hist)
	}
	return t
}

func (t *resTable[V]) shard(id xproto.ID) *resShard[V] {
	// Fold the per-connection ID-range base (multiples of 1<<21, see
	// ServeConn) into the low bits: without it every client's k-th
	// resource would map to the same shard.
	h := uint32(id) ^ uint32(id)>>21
	return &t.shards[h%resShards]
}

func (t *resTable[V]) get(id xproto.ID) (V, bool)           { return t.shard(id).get(id) }
func (t *resTable[V]) set(id xproto.ID, v V) (V, bool)      { return t.shard(id).set(id, v) }
func (t *resTable[V]) delete(id xproto.ID)                  { t.shard(id).delete(id) }
func (t *resTable[V]) take(id xproto.ID) (V, bool)          { return t.shard(id).take(id) }
func (t *resTable[V]) with(id xproto.ID, fn func(v V)) bool { return t.shard(id).with(id, fn) }

// sweep removes every entry for which drop returns true, shard by
// shard (no global freeze — fine for disconnect cleanup).
func (t *resTable[V]) sweep(drop func(v V) bool) {
	for i := range t.shards {
		t.shards[i].sweep(drop)
	}
}

// size returns the total entry count across shards. Point-in-time per
// shard; exact when writers are quiesced (how the tests use it).
func (t *resTable[V]) size() int {
	n := 0
	for i := range t.shards {
		n += t.shards[i].size()
	}
	return n
}
