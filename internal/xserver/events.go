package xserver

import (
	"repro/internal/xproto"
)

// viewable reports whether w and all its ancestors are mapped. Called with s.treeMu held.
func (s *Server) viewable(w *window) bool {
	for x := w; x != nil; x = x.parent {
		if !x.mapped {
			return false
		}
	}
	return true
}

// absPos returns the absolute (root-relative) position of w's content
// origin. Called with s.treeMu held.
func (s *Server) absPos(w *window) (int, int) {
	x, y := 0, 0
	for cur := w; cur != nil; cur = cur.parent {
		x += cur.x + cur.borderWidth
		y += cur.y + cur.borderWidth
	}
	// The root has no offset of its own.
	return x, y
}

// deepestAt finds the deepest viewable window containing the absolute
// point (x, y), starting from the root. Called with s.treeMu held.
func (s *Server) deepestAt(x, y int) *window {
	cur := s.root
	cx, cy := 0, 0
	for {
		found := false
		// Children are stored bottom-to-top; scan topmost first.
		for i := len(cur.children) - 1; i >= 0; i-- {
			ch := cur.children[i]
			if !ch.mapped {
				continue
			}
			ox := cx + ch.x + ch.borderWidth
			oy := cy + ch.y + ch.borderWidth
			if x >= ox && y >= oy && x < ox+ch.w && y < oy+ch.h {
				cur, cx, cy = ch, ox, oy
				found = true
				break
			}
		}
		if !found {
			return cur
		}
	}
}

// broadcast sends ev to every client that selected mask on w. It reports
// whether anyone received it. Called with s.treeMu held.
func (s *Server) broadcast(w *window, ev *xproto.Event, mask uint32) bool {
	delivered := false
	for c, m := range w.masks {
		if m&mask != 0 {
			c.sendEvent(ev)
			delivered = true
		}
	}
	return delivered
}

// deliverDevice routes a device event (key/button/motion) to target,
// propagating to ancestors until some client has selected it, translating
// coordinates as it goes (X11 event propagation). Called with s.treeMu held.
func (s *Server) deliverDevice(target *window, ev *xproto.Event, mask uint32) {
	w := target
	for w != nil {
		ax, ay := s.absPos(w)
		ev.Window = w.id
		ev.X = int16(s.pointerX - ax)
		ev.Y = int16(s.pointerY - ay)
		if s.broadcast(w, ev, mask) {
			return
		}
		w = w.parent
	}
}

// Called with s.treeMu held.
func (s *Server) sendExpose(w *window) {
	ev := &xproto.Event{
		Type: xproto.Expose, Window: w.id,
		Width: uint16(w.w), Height: uint16(w.h), Time: s.now(),
	}
	s.broadcast(w, ev, xproto.ExposureMask)
}

// sendExposeTree exposes w and every viewable descendant. Called with s.treeMu held.
func (s *Server) sendExposeTree(w *window) {
	if !s.viewable(w) {
		return
	}
	s.sendExpose(w)
	for _, ch := range w.children {
		if ch.mapped {
			s.sendExposeTree(ch)
		}
	}
}

// Called with s.treeMu held.
func (s *Server) sendConfigureNotify(w *window) {
	ev := &xproto.Event{
		Type: xproto.ConfigureNotify, Window: w.id,
		X: int16(w.x), Y: int16(w.y),
		Width: uint16(w.w), Height: uint16(w.h),
		BorderWidth: uint16(w.borderWidth), Time: s.now(),
	}
	s.broadcast(w, ev, xproto.StructureNotifyMask)
}

// Called with s.treeMu held.
func (s *Server) sendPropertyNotify(w *window, atom xproto.Atom, state uint8) {
	ev := &xproto.Event{
		Type: xproto.PropertyNotify, Window: w.id,
		Atom: atom, PropState: state, Time: s.now(),
	}
	s.broadcast(w, ev, xproto.PropertyChangeMask)
}

// Called with s.treeMu held.
func (s *Server) mapWindow(w *window) {
	if w.mapped {
		return
	}
	w.mapped = true
	ev := &xproto.Event{Type: xproto.MapNotify, Window: w.id, Time: s.now()}
	s.broadcast(w, ev, xproto.StructureNotifyMask)
	s.sendExposeTree(w)
	s.refreshPointerWindow()
}

// Called with s.treeMu held.
func (s *Server) unmapWindow(w *window) {
	if !w.mapped {
		return
	}
	w.mapped = false
	ev := &xproto.Event{Type: xproto.UnmapNotify, Window: w.id, Time: s.now()}
	s.broadcast(w, ev, xproto.StructureNotifyMask)
	s.refreshPointerWindow()
}

// destroyWindow removes w and its subtree, notifying interested clients
// (children first, as X does). Called with s.treeMu held.
func (s *Server) destroyWindow(w *window) {
	for len(w.children) > 0 {
		s.destroyWindow(w.children[len(w.children)-1])
	}
	w.mapped = false
	ev := &xproto.Event{Type: xproto.DestroyNotify, Window: w.id, Time: s.now()}
	s.broadcast(w, ev, xproto.StructureNotifyMask)
	if w.parent != nil {
		sibs := w.parent.children
		for i, sib := range sibs {
			if sib == w {
				w.parent.children = append(sibs[:i], sibs[i+1:]...)
				break
			}
		}
	}
	delete(s.windows, w.id)
	if w != s.root {
		// Every non-root window in s.windows passed through
		// handleCreateWindow's quota reservation exactly once; this is
		// the matching release (recursion covers the subtree).
		s.usedWindows.Add(-1)
	}
	for sel, o := range s.selections {
		if o.owner == w {
			delete(s.selections, sel)
		}
	}
	if s.focus == w.id {
		s.focus = xproto.None
	}
	if s.grabWin == w {
		s.grabWin = nil
	}
	if s.pointerWin == w {
		s.pointerWin = nil
		s.refreshPointerWindow()
	}
	w.parent = nil
}

// Called with s.treeMu held.
func (s *Server) setFocus(f xproto.ID) {
	if s.focus == f {
		return
	}
	if old := s.windows[s.focus]; old != nil {
		ev := &xproto.Event{Type: xproto.FocusOut, Window: old.id, Time: s.now()}
		s.broadcast(old, ev, xproto.FocusChangeMask)
	}
	s.focus = f
	if nw := s.windows[f]; nw != nil {
		ev := &xproto.Event{Type: xproto.FocusIn, Window: nw.id, Time: s.now()}
		s.broadcast(nw, ev, xproto.FocusChangeMask)
	}
}

// refreshPointerWindow recomputes which window contains the pointer and
// generates crossing events on change. Called with s.treeMu held.
func (s *Server) refreshPointerWindow() {
	newWin := s.deepestAt(s.pointerX, s.pointerY)
	old := s.pointerWin
	if newWin == old {
		return
	}
	s.pointerWin = newWin
	if old != nil && s.windows[old.id] == old {
		ax, ay := s.absPos(old)
		ev := &xproto.Event{
			Type: xproto.LeaveNotify, Window: old.id,
			X: int16(s.pointerX - ax), Y: int16(s.pointerY - ay),
			RootX: int16(s.pointerX), RootY: int16(s.pointerY),
			State: s.buttons | s.modifiers, Time: s.now(),
		}
		s.broadcast(old, ev, xproto.LeaveWindowMask)
	}
	if newWin != nil {
		ax, ay := s.absPos(newWin)
		ev := &xproto.Event{
			Type: xproto.EnterNotify, Window: newWin.id,
			X: int16(s.pointerX - ax), Y: int16(s.pointerY - ay),
			RootX: int16(s.pointerX), RootY: int16(s.pointerY),
			State: s.buttons | s.modifiers, Time: s.now(),
		}
		s.broadcast(newWin, ev, xproto.EnterWindowMask)
	}
}

// handleFakeInput injects synthetic user input (the simulator's XTEST). Called with s.treeMu held.
func (s *Server) handleFakeInput(q *xproto.FakeInputReq) {
	switch q.Kind {
	case xproto.FakeMotion:
		s.pointerX, s.pointerY = int(q.X), int(q.Y)
		s.refreshPointerWindow()
		target := s.pointerWin
		if s.grabWin != nil {
			target = s.grabWin
		}
		if target == nil {
			return
		}
		ev := &xproto.Event{
			Type:  xproto.MotionNotify,
			RootX: int16(s.pointerX), RootY: int16(s.pointerY),
			State: s.buttons | s.modifiers, Time: s.now(),
		}
		mask := xproto.PointerMotionMask
		if s.buttons != 0 {
			mask |= xproto.ButtonMotionMask
		}
		if s.grabWin != nil {
			ax, ay := s.absPos(s.grabWin)
			ev.Window = s.grabWin.id
			ev.X = int16(s.pointerX - ax)
			ev.Y = int16(s.pointerY - ay)
			s.broadcast(s.grabWin, ev, mask)
		} else {
			s.deliverDevice(target, ev, mask)
		}
	case xproto.FakeButtonPress:
		before := s.buttons
		s.buttons |= xproto.ButtonMask(int(q.Detail))
		ev := &xproto.Event{
			Type: xproto.ButtonPress, Detail: q.Detail,
			RootX: int16(s.pointerX), RootY: int16(s.pointerY),
			State: before | s.modifiers, Time: s.now(),
		}
		target := s.pointerWin
		if s.grabWin != nil {
			target = s.grabWin
		}
		if target == nil {
			return
		}
		if s.grabWin == nil {
			// Implicit grab: subsequent pointer events go to this window
			// until all buttons are released.
			s.grabWin = s.deliverTargetFor(target, xproto.ButtonPressMask)
			if s.grabWin == nil {
				s.grabWin = target
			}
		}
		ax, ay := s.absPos(s.grabWin)
		ev.Window = s.grabWin.id
		ev.X = int16(s.pointerX - ax)
		ev.Y = int16(s.pointerY - ay)
		if !s.broadcast(s.grabWin, ev, xproto.ButtonPressMask) {
			s.deliverDevice(target, ev, xproto.ButtonPressMask)
		}
	case xproto.FakeButtonRelease:
		before := s.buttons
		s.buttons &^= xproto.ButtonMask(int(q.Detail))
		ev := &xproto.Event{
			Type: xproto.ButtonRelease, Detail: q.Detail,
			RootX: int16(s.pointerX), RootY: int16(s.pointerY),
			State: before | s.modifiers, Time: s.now(),
		}
		target := s.pointerWin
		if s.grabWin != nil {
			target = s.grabWin
			ax, ay := s.absPos(target)
			ev.Window = target.id
			ev.X = int16(s.pointerX - ax)
			ev.Y = int16(s.pointerY - ay)
			s.broadcast(target, ev, xproto.ButtonReleaseMask)
		} else if target != nil {
			s.deliverDevice(target, ev, xproto.ButtonReleaseMask)
		}
		if s.buttons == 0 {
			s.grabWin = nil
			s.refreshPointerWindow()
		}
	case xproto.FakeKeyPress, xproto.FakeKeyRelease:
		ks := xproto.Keysym(q.Detail)
		typ := uint8(xproto.KeyPress)
		mask := xproto.KeyPressMask
		if q.Kind == xproto.FakeKeyRelease {
			typ = xproto.KeyRelease
			mask = xproto.KeyReleaseMask
		}
		state := s.buttons | s.modifiers
		if mod := xproto.KeysymModifier(ks); mod != 0 {
			if q.Kind == xproto.FakeKeyPress {
				s.modifiers |= mod
			} else {
				s.modifiers &^= mod
			}
		}
		ev := &xproto.Event{
			Type: typ, Detail: q.Detail, Keysym: ks,
			RootX: int16(s.pointerX), RootY: int16(s.pointerY),
			State: state, Time: s.now(),
		}
		target := s.keyTarget()
		if target != nil {
			s.deliverDevice(target, ev, mask)
		}
	}
}

// keyTarget determines which window receives keyboard input: the focus
// window when one is set, otherwise the window under the pointer
// (PointerRoot focus mode). Called with s.treeMu held.
func (s *Server) keyTarget() *window {
	if s.focus != xproto.None && s.focus != s.Root() {
		if w := s.windows[s.focus]; w != nil {
			return w
		}
	}
	return s.pointerWin
}

// deliverTargetFor walks up from w to the nearest window where some
// client selected mask, without delivering. Called with s.treeMu held.
func (s *Server) deliverTargetFor(w *window, mask uint32) *window {
	for x := w; x != nil; x = x.parent {
		for _, m := range x.masks {
			if m&mask != 0 {
				return x
			}
		}
	}
	return nil
}
