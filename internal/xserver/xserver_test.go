package xserver

import (
	"testing"
	"testing/quick"

	"repro/internal/xproto"
)

func TestImageFillAndClip(t *testing.T) {
	im := newImage(10, 10)
	im.fillRect(2, 2, 3, 3, 0xff0000)
	if im.get(2, 2) != 0xff0000 || im.get(4, 4) != 0xff0000 {
		t.Fatal("fill inside")
	}
	if im.get(5, 5) != 0 || im.get(1, 1) != 0 {
		t.Fatal("fill boundary")
	}
	// Out-of-bounds fills clip instead of panicking.
	im.fillRect(-5, -5, 100, 100, 0x00ff00)
	if im.get(0, 0) != 0x00ff00 || im.get(9, 9) != 0x00ff00 {
		t.Fatal("clipped fill")
	}
	// set/get out of range are no-ops / zero.
	im.set(-1, 0, 1)
	im.set(100, 100, 1)
	if im.get(-1, 0) != 0 || im.get(100, 100) != 0 {
		t.Fatal("out-of-range access")
	}
}

func TestImageResizePreservesContent(t *testing.T) {
	im := newImage(4, 4)
	im.fillRect(0, 0, 4, 4, 0x123456)
	im.resize(8, 8)
	if im.get(3, 3) != 0x123456 {
		t.Fatal("content lost on grow")
	}
	if im.get(7, 7) != 0 {
		t.Fatal("new area should be zero")
	}
	im.resize(2, 2)
	if im.w != 2 || im.h != 2 || im.get(1, 1) != 0x123456 {
		t.Fatal("shrink")
	}
}

func TestImageLines(t *testing.T) {
	im := newImage(10, 10)
	im.drawLine(0, 0, 9, 9, 1, 7)
	for i := 0; i < 10; i++ {
		if im.get(i, i) != 7 {
			t.Fatalf("diagonal pixel (%d,%d) unset", i, i)
		}
	}
	im2 := newImage(10, 10)
	im2.drawLine(0, 5, 9, 5, 1, 9)
	for i := 0; i < 10; i++ {
		if im2.get(i, 5) != 9 {
			t.Fatal("horizontal line")
		}
	}
}

func TestImageFillPoly(t *testing.T) {
	im := newImage(20, 20)
	// A solid square as a polygon.
	im.fillPoly([]xproto.Point{{X: 5, Y: 5}, {X: 15, Y: 5}, {X: 15, Y: 15}, {X: 5, Y: 15}}, 3)
	if im.get(10, 10) != 3 {
		t.Fatal("interior not filled")
	}
	if im.get(2, 2) != 0 || im.get(17, 10) != 0 {
		t.Fatal("exterior filled")
	}
	// Triangles (the scrollbar arrows).
	im2 := newImage(20, 20)
	im2.fillPoly([]xproto.Point{{X: 10, Y: 2}, {X: 18, Y: 16}, {X: 2, Y: 16}}, 5)
	if im2.get(10, 10) != 5 {
		t.Fatal("triangle interior")
	}
	if im2.get(2, 3) != 0 {
		t.Fatal("triangle exterior")
	}
	// Degenerate polygons do nothing.
	im2.fillPoly([]xproto.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}, 9)
}

func TestCopyFromOverlap(t *testing.T) {
	im := newImage(10, 1)
	for i := 0; i < 10; i++ {
		im.set(i, 0, uint32(i+1))
	}
	// Overlapping self-copy shifts right by 2.
	im.copyFrom(im, 0, 0, 2, 0, 8, 1)
	for i := 2; i < 10; i++ {
		if im.get(i, 0) != uint32(i-1) {
			t.Fatalf("overlap copy pixel %d = %d", i, im.get(i, 0))
		}
	}
}

func TestFontMetricsAndRendering(t *testing.T) {
	f := openFont("fixed")
	if f.advance != 6 || f.ascent != 8 || f.descent != 2 {
		t.Fatalf("fixed metrics = %d/%d/%d", f.advance, f.ascent, f.descent)
	}
	if f.textWidth("hello") != 30 {
		t.Fatal("text width")
	}
	big := openFont("8x16bold")
	if big.scale != 2 || big.advance != 12 {
		t.Fatal("large font variant")
	}
	im := newImage(40, 20)
	n := f.drawString(im, 0, 10, "W", 1)
	if n != 6 {
		t.Fatalf("advance = %d", n)
	}
	set := 0
	for y := 0; y < 20; y++ {
		for x := 0; x < 6; x++ {
			if im.get(x, y) == 1 {
				set++
			}
		}
	}
	if set < 8 {
		t.Fatalf("glyph W drew %d pixels", set)
	}
	// Non-ASCII renders the fallback glyph without panicking.
	f.drawString(im, 0, 10, "\x01\xff", 1)
}

func TestFont5x7TableComplete(t *testing.T) {
	if len(font5x7) != 95*5 {
		t.Fatalf("font table has %d bytes, want %d", len(font5x7), 95*5)
	}
	// Every printable character has at least one pixel except space.
	for c := 0x21; c <= 0x7e; c++ {
		glyph := font5x7[(c-0x20)*5 : (c-0x20)*5+5]
		any := false
		for _, col := range glyph {
			if col != 0 {
				any = true
			}
		}
		if !any {
			t.Errorf("glyph %q is empty", rune(c))
		}
	}
}

func TestLookupColor(t *testing.T) {
	cases := []struct {
		name  string
		pixel uint32
		ok    bool
	}{
		{"red", 0xff0000, true},
		{"Red", 0xff0000, true},
		{"RED", 0xff0000, true},
		{"Medium Sea Green", 0x3cb371, true},
		{"MediumSeaGreen", 0x3cb371, true},
		{"#ff8000", 0xff8000, true},
		{"#f80", 0xff8800, true},
		{"#ffff80000000", 0xff8000, true},
		{"PalePink1", 0xffe4e1, true},
		{"NotAColor", 0, false},
		{"#xyz", 0, false},
		{"#12345", 0, false},
	}
	for _, c := range cases {
		px, ok := lookupColor(c.name)
		if ok != c.ok || (ok && px != c.pixel) {
			t.Errorf("lookupColor(%q) = %#x %v, want %#x %v", c.name, px, ok, c.pixel, c.ok)
		}
	}
}

// Property: fillRect never touches pixels outside the clipped rectangle.
func TestFillRectClipProperty(t *testing.T) {
	f := func(x, y int8, w, h uint8) bool {
		im := newImage(16, 16)
		im.fillRect(int(x), int(y), int(w), int(h), 0xff)
		for yy := 0; yy < 16; yy++ {
			for xx := 0; xx < 16; xx++ {
				inside := xx >= int(x) && xx < int(x)+int(w) &&
					yy >= int(y) && yy < int(y)+int(h)
				got := im.get(xx, yy) == 0xff
				if got != inside {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServerWindowTreeInternals(t *testing.T) {
	s := New(100, 100)
	defer s.Close()
	if s.Root() != 1 {
		t.Fatal("root id")
	}
	if s.deepestAt(50, 50) != s.root {
		t.Fatal("deepest on empty screen should be root")
	}
	if !s.viewable(s.root) {
		t.Fatal("root must be viewable")
	}
	if x, y := s.absPos(s.root); x != 0 || y != 0 {
		t.Fatal("root abs pos")
	}
}
