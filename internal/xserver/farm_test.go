package xserver

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xproto"
)

// waitQuotaZero polls until the server's quota usage reconciles to
// zero on every axis (connection cleanup runs asynchronously after the
// client side closes).
func waitQuotaZero(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w, pb, g := s.QuotaUsage()
		if w == 0 && pb == 0 && g == 0 {
			return
		}
		if w < 0 || pb < 0 || g < 0 {
			t.Fatalf("quota usage went negative (double release): windows=%d pixmapBytes=%d gcs=%d", w, pb, g)
		}
		if time.Now().After(deadline) {
			t.Fatalf("quota did not reconcile to zero: windows=%d pixmapBytes=%d gcs=%d", w, pb, g)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFarmSessionsAreIsolated: two sessions on one farm are separate
// displays — windows created in one are invisible to the other, while
// two connections attaching the same name share a display.
func TestFarmSessionsAreIsolated(t *testing.T) {
	f := NewFarm(FarmOptions{Width: 320, Height: 200})
	defer f.Close()

	a, err := xclient.OpenSession(f.ConnectPipe(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := xclient.OpenSession(f.ConnectPipe(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.CreateWindow(a.Root, 10, 10, 100, 80, 1, xclient.WindowAttributes{})
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	at, err := a.QueryTree(a.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Children) != 1 {
		t.Fatalf("alice sees %d root children, want 1", len(at.Children))
	}
	bt, err := b.QueryTree(b.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt.Children) != 0 {
		t.Fatalf("bob sees %d root children, want 0 (tenant leakage)", len(bt.Children))
	}

	// A second connection to "alice" shares her display.
	a2, err := xclient.OpenSession(f.ConnectPipe(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	at2, err := a2.QueryTree(a2.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(at2.Children) != 1 {
		t.Fatalf("alice's second connection sees %d root children, want 1", len(at2.Children))
	}
	if n := f.SessionCount(); n != 2 {
		t.Fatalf("SessionCount = %d, want 2", n)
	}
	if got := f.Metrics().Counter("farm.admissions").Value(); got != 2 {
		t.Fatalf("farm.admissions = %d, want 2", got)
	}
}

// TestFarmAdmissionCap: the cap bounds live sessions; a refused client
// gets a clean error naming the cap, not a hang or a bare close, and
// eviction frees the slot.
func TestFarmAdmissionCap(t *testing.T) {
	f := NewFarm(FarmOptions{Width: 160, Height: 120, MaxSessions: 2})
	defer f.Close()

	a, err := xclient.OpenSession(f.ConnectPipe(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := xclient.OpenSession(f.ConnectPipe(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := xclient.OpenSession(f.ConnectPipe(), "c"); err == nil {
		t.Fatal("third session admitted past cap 2")
	} else if !strings.Contains(err.Error(), "session cap 2") {
		t.Fatalf("refusal error does not name the cap: %v", err)
	}
	if got := f.Metrics().Counter("farm.rejections").Value(); got != 1 {
		t.Fatalf("farm.rejections = %d, want 1", got)
	}

	// Disconnecting does not retire a session — eviction does.
	b.Close()
	if !f.Evict("b") {
		t.Fatal("Evict(b) found no session")
	}
	c, err := xclient.OpenSession(f.ConnectPipe(), "c")
	if err != nil {
		t.Fatalf("session c not admitted after eviction freed a slot: %v", err)
	}
	c.Close()
}

// TestFarmQuotaDenialIsClean: exceeding each quota axis yields an X
// error on the ordinary async error path and leaves the connection
// fully usable — and freeing the resource returns the headroom.
func TestFarmQuotaDenialIsClean(t *testing.T) {
	f := NewFarm(FarmOptions{
		Width: 320, Height: 200,
		Quota: Quota{MaxWindows: 2, MaxPixmapBytes: 64 * 64 * 4, MaxGCs: 1},
	})
	defer f.Close()

	d, err := xclient.OpenSession(f.ConnectPipe(), "tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var mu sync.Mutex
	var errs []string
	d.ErrorHandler = func(msg string) {
		mu.Lock()
		errs = append(errs, msg)
		mu.Unlock()
	}
	takeErr := func() string {
		mu.Lock()
		defer mu.Unlock()
		if len(errs) == 0 {
			return ""
		}
		msg := errs[len(errs)-1]
		errs = nil
		return msg
	}
	expectDenied := func(what, resource string) {
		t.Helper()
		if err := d.Sync(); err != nil {
			t.Fatalf("%s: connection poisoned by quota denial: %v", what, err)
		}
		msg := takeErr()
		if !strings.Contains(msg, "quota exceeded") || !strings.Contains(msg, resource) {
			t.Fatalf("%s: want a %q quota error, got %q", what, resource, msg)
		}
	}

	// Windows: 2 allowed, 3rd denied; destroying one restores headroom.
	w1 := d.CreateWindow(d.Root, 0, 0, 50, 50, 0, xclient.WindowAttributes{})
	d.CreateWindow(d.Root, 0, 0, 50, 50, 0, xclient.WindowAttributes{})
	d.CreateWindow(d.Root, 0, 0, 50, 50, 0, xclient.WindowAttributes{})
	expectDenied("third window", "windows")
	d.DestroyWindow(w1)
	d.CreateWindow(d.Root, 0, 0, 50, 50, 0, xclient.WindowAttributes{})
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if msg := takeErr(); msg != "" {
		t.Fatalf("window create after destroy should fit the quota, got %q", msg)
	}

	// Pixmap bytes: one 64×64 fills the budget exactly; any more is
	// denied until it is freed.
	p1 := d.CreatePixmap(64, 64)
	d.CreatePixmap(8, 8)
	expectDenied("second pixmap", "pixmap_bytes")
	d.FreePixmap(p1)
	d.CreatePixmap(8, 8)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if msg := takeErr(); msg != "" {
		t.Fatalf("small pixmap after free should fit the quota, got %q", msg)
	}

	// GCs.
	g1 := d.CreateGC(xclient.GCValues{})
	d.CreateGC(xclient.GCValues{})
	expectDenied("second gc", "gcs")
	d.FreeGC(g1)
	d.CreateGC(xclient.GCValues{})
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if msg := takeErr(); msg != "" {
		t.Fatalf("gc after free should fit the quota, got %q", msg)
	}

	sess, ok := f.Lookup("tenant")
	if !ok {
		t.Fatal("session vanished")
	}
	if got := sess.Server().Metrics().Counter("quota.denied.windows").Value(); got != 1 {
		t.Fatalf("quota.denied.windows = %d, want 1", got)
	}
	if got := f.Metrics().Counter("quota.denied.pixmap_bytes").Value(); got != 1 {
		t.Fatalf("rolled-up quota.denied.pixmap_bytes = %d, want 1", got)
	}

	// Teardown reconciles to zero.
	d.Close()
	waitQuotaZero(t, sess.Server())
}

// TestFarmQuotaReconcilesAcrossNestedOwnership: the PR 5 regression
// shape, now with quota accounting on top — client B's windows nested
// inside client A's tree must release exactly B's reservations when B
// disconnects, and everything must reach zero when A follows.
func TestFarmQuotaReconcilesAcrossNestedOwnership(t *testing.T) {
	f := NewFarm(FarmOptions{Width: 400, Height: 300})
	defer f.Close()

	a, err := xclient.OpenSession(f.ConnectPipe(), "s")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := xclient.OpenSession(f.ConnectPipe(), "s")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	aw := a.CreateWindow(a.Root, 10, 10, 200, 150, 1, xclient.WindowAttributes{})
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	// B nests a chain inside A's window and owns resources of every kind.
	bw1 := b.CreateWindow(aw, 5, 5, 80, 60, 0, xclient.WindowAttributes{})
	b.CreateWindow(bw1, 2, 2, 40, 30, 0, xclient.WindowAttributes{})
	b.CreatePixmap(32, 32)
	b.CreateGC(xclient.GCValues{})
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}

	sess, _ := f.Lookup("s")
	srv := sess.Server()
	if w, pb, g := srv.QuotaUsage(); w != 3 || pb != 32*32*4 || g != 1 {
		t.Fatalf("usage before disconnects: windows=%d pixmapBytes=%d gcs=%d", w, pb, g)
	}

	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w, pb, g := srv.QuotaUsage()
		if w == 1 && pb == 0 && g == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after B left: windows=%d pixmapBytes=%d gcs=%d, want 1/0/0", w, pb, g)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A is untouched and fully usable.
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	waitQuotaZero(t, srv)
}

// TestFarmIdleEviction: a session nobody speaks to is retired by the
// sweeper; reattaching the same name builds a fresh display.
func TestFarmIdleEviction(t *testing.T) {
	f := NewFarm(FarmOptions{
		Width: 160, Height: 120,
		IdleEvict: 50 * time.Millisecond, SweepInterval: 10 * time.Millisecond,
	})
	defer f.Close()

	d, err := xclient.OpenSession(f.ConnectPipe(), "idler")
	if err != nil {
		t.Fatal(err)
	}
	d.CreateWindow(d.Root, 0, 0, 50, 50, 0, xclient.WindowAttributes{})
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	// Go idle (the open connection does not pin the session) and wait
	// for the sweeper.
	deadline := time.Now().Add(5 * time.Second)
	for f.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session not evicted; count=%d", f.SessionCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := f.Metrics().Counter("farm.evictions").Value(); got < 1 {
		t.Fatalf("farm.evictions = %d, want >= 1", got)
	}
	d.Close()

	// Reattach: a fresh session with an empty tree.
	d2, err := xclient.OpenSession(f.ConnectPipe(), "idler")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tree, err := d2.QueryTree(d2.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 0 {
		t.Fatalf("reattached session inherited %d windows from the evicted one", len(tree.Children))
	}
	if got := f.Metrics().Counter("farm.admissions").Value(); got != 2 {
		t.Fatalf("farm.admissions = %d, want 2", got)
	}
}

// TestFarmSweepRacesInflightRequests: an aggressive sweeper (everything
// is "idle" almost immediately) runs against clients that keep issuing
// requests and reconnecting. The race must resolve cleanly every time:
// no panic, no hang, clients see either success or connection loss, and
// every evicted session's quota reconciles to zero.
func TestFarmSweepRacesInflightRequests(t *testing.T) {
	f := NewFarm(FarmOptions{
		Width: 160, Height: 120,
		IdleEvict: time.Nanosecond, SweepInterval: 10 * time.Millisecond,
	})
	defer f.Close()

	var wg sync.WaitGroup
	var servers sync.Map // *Server -> true, every session server ever admitted
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := []string{"w", "x", "y", "z"}[g]
			for attempt := 0; attempt < 8; attempt++ {
				d, err := xclient.OpenSession(f.ConnectPipe(), name)
				if err != nil {
					continue // raced the sweeper mid-handshake; try again
				}
				if sess, ok := f.Lookup(name); ok {
					servers.Store(sess.Server(), true)
				}
				for i := 0; i < 50; i++ {
					d.CreateWindow(d.Root, 0, 0, 20, 20, 0, xclient.WindowAttributes{})
					if err := d.Sync(); err != nil {
						break // evicted mid-flight: connection severed, cleanly
					}
				}
				d.Close()
			}
		}(g)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	servers.Range(func(k, _ any) bool {
		srv := k.(*Server)
		for {
			w, pb, g := srv.QuotaUsage()
			if w == 0 && pb == 0 && g == 0 {
				return true
			}
			if w < 0 || pb < 0 || g < 0 {
				t.Errorf("negative quota usage after sweep race: %d/%d/%d", w, pb, g)
				return false
			}
			if time.Now().After(deadline) {
				t.Errorf("quota not reconciled after sweep race: %d/%d/%d", w, pb, g)
				return false
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

// TestFarmEvictionCrossTenantIsolation: evicting one tenant — including
// one whose clients hold windows nested inside each other's trees —
// must leave every other tenant's display byte-for-byte intact and
// responsive.
func TestFarmEvictionCrossTenantIsolation(t *testing.T) {
	f := NewFarm(FarmOptions{Width: 320, Height: 200})
	defer f.Close()

	// Victim session: two connections with cross-nested ownership (the
	// PR 5 regression shape).
	v1, err := xclient.OpenSession(f.ConnectPipe(), "victim")
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2, err := xclient.OpenSession(f.ConnectPipe(), "victim")
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	vw := v1.CreateWindow(v1.Root, 10, 10, 100, 80, 0, xclient.WindowAttributes{})
	if err := v1.Sync(); err != nil {
		t.Fatal(err)
	}
	v2.CreateWindow(vw, 5, 5, 40, 30, 0, xclient.WindowAttributes{})
	if err := v2.Sync(); err != nil {
		t.Fatal(err)
	}

	// Survivor session with state worth protecting.
	s, err := xclient.OpenSession(f.ConnectPipe(), "survivor")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.CreateWindow(s.Root, 0, 0, 60, 40, 0, xclient.WindowAttributes{})
	s.CreateWindow(s.Root, 70, 0, 60, 40, 0, xclient.WindowAttributes{})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	vsess, _ := f.Lookup("victim")
	if !f.Evict("victim") {
		t.Fatal("Evict(victim) found no session")
	}
	waitQuotaZero(t, vsess.Server())

	// The survivor never notices.
	if err := s.Sync(); err != nil {
		t.Fatalf("survivor connection broken by eviction: %v", err)
	}
	tree, err := s.QueryTree(s.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("survivor has %d root children after eviction, want 2", len(tree.Children))
	}
	if n := f.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d, want 1", n)
	}
}

// TestAttachSessionAgainstPlainServer: a session-aware client attaching
// a plain single-display server works transparently — the attach frame
// is consumed without a sequence number, so round trips stay aligned.
func TestAttachSessionAgainstPlainServer(t *testing.T) {
	s := New(320, 200)
	defer s.Close()
	d, err := xclient.OpenSession(s.ConnectPipe(), "ignored")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 3; i++ {
		if err := d.Sync(); err != nil {
			t.Fatalf("round trip %d after attach-skip: %v", i, err)
		}
	}
	if _, err := d.InternAtom("ALIGNED"); err != nil {
		t.Fatalf("reply routing misaligned after attach-skip: %v", err)
	}
}

// TestFarmLegacyFirstFrameReplay: a client that speaks a normal request
// first (no attach handshake) lands in the default session and its
// first frame is dispatched as request #1, not lost. Raw wire frames:
// xclient.Open cannot stand in here because it reads the setup block
// before sending anything, and a farm needs the client to speak first.
func TestFarmLegacyFirstFrameReplay(t *testing.T) {
	f := NewFarm(FarmOptions{Width: 160, Height: 120})
	defer f.Close()
	nc := f.ConnectPipe()
	defer nc.Close()

	done := make(chan error, 1)
	go func() { done <- xproto.WriteRequestFrame(nc, xproto.OpPing, nil) }()
	kind, _, err := xproto.ReadServerFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if kind != xproto.KindReply {
		t.Fatalf("setup frame kind = %d, want reply", kind)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	kind, payload, err := xproto.ReadServerFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	r := xproto.NewReader(payload)
	if seq := r.U64(); kind != xproto.KindReply || seq != 1 {
		t.Fatalf("replayed ping answered with kind=%d seq=%d, want reply seq=1", kind, seq)
	}
	if _, ok := f.Lookup(""); !ok {
		t.Fatal("legacy client did not land in the default session")
	}
}

// TestParseQuota covers the -quota flag syntax.
func TestParseQuota(t *testing.T) {
	q, err := ParseQuota("windows=256,pixmap-bytes=16m,gcs=128")
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxWindows != 256 || q.MaxPixmapBytes != 16<<20 || q.MaxGCs != 128 {
		t.Fatalf("parsed %+v", q)
	}
	if q, err := ParseQuota(" pixmap-bytes=4K "); err != nil || q.MaxPixmapBytes != 4<<10 {
		t.Fatalf("suffix K: %+v, %v", q, err)
	}
	if q, err := ParseQuota(""); err != nil || q != (Quota{}) {
		t.Fatalf("empty spec: %+v, %v", q, err)
	}
	for _, bad := range []string{"windows", "disks=3", "windows=-1", "windows=x", "pixmap-bytes=9999999999g"} {
		if _, err := ParseQuota(bad); err == nil {
			t.Errorf("ParseQuota(%q) accepted", bad)
		}
	}
}
