package xserver

import (
	"sort"
	"time"

	"repro/internal/xproto"
)

// handle executes one decoded request under the subsystem locks it
// needs — there is no global lock (see the Server doc comment for the
// model and the lock order). Tree-touching handlers take s.treeMu
// themselves; resource requests touch only their sharded table;
// atom/font/color requests take their subsystem RWMutex, read side
// first.
func (s *Server) handle(c *conn, req xproto.Request) {
	switch q := req.(type) {
	// --- Window tree, input and selections: treeMu. ------------------
	case *xproto.CreateWindowReq:
		s.handleCreateWindow(c, q)
	case *xproto.ChangeWindowAttributesReq:
		s.handleChangeAttributes(c, q)
	case *xproto.DestroyWindowReq:
		s.treeMu.Lock()
		if w := s.windows[q.Window]; w != nil && w != s.root {
			s.destroyWindow(w)
		}
		s.treeMu.Unlock()
	case *xproto.MapWindowReq:
		s.treeMu.Lock()
		if w := s.windows[q.Window]; w != nil {
			s.mapWindow(w)
		} else {
			c.protoError("MapWindow: bad window %d", q.Window)
		}
		s.treeMu.Unlock()
	case *xproto.UnmapWindowReq:
		s.treeMu.Lock()
		if w := s.windows[q.Window]; w != nil {
			s.unmapWindow(w)
		}
		s.treeMu.Unlock()
	case *xproto.ConfigureWindowReq:
		s.handleConfigureWindow(c, q)
	case *xproto.GetGeometryReq:
		s.handleGetGeometry(c, q)
	case *xproto.QueryTreeReq:
		s.handleQueryTree(c, q)
	case *xproto.ChangePropertyReq:
		s.handleChangeProperty(c, q)
	case *xproto.DeletePropertyReq:
		s.handleDeleteProperty(c, q)
	case *xproto.GetPropertyReq:
		s.handleGetProperty(c, q)
	case *xproto.ListPropertiesReq:
		s.handleListProperties(c, q)
	case *xproto.SetSelectionOwnerReq:
		s.handleSetSelectionOwner(c, q)
	case *xproto.GetSelectionOwnerReq:
		s.treeMu.Lock()
		var owner xproto.ID
		if sel := s.selections[q.Selection]; sel != nil && sel.owner != nil {
			owner = sel.owner.id
		}
		s.treeMu.Unlock()
		c.reply(func(w *xproto.Writer) { (&xproto.WindowReply{Window: owner}).Encode(w) })
	case *xproto.ConvertSelectionReq:
		s.handleConvertSelection(c, q)
	case *xproto.SendEventReq:
		s.handleSendEvent(c, q)
	case *xproto.QueryPointerReq:
		s.treeMu.Lock()
		rep := &xproto.QueryPointerReply{
			X: int16(s.pointerX), Y: int16(s.pointerY),
			State: s.buttons | s.modifiers,
		}
		if s.pointerWin != nil {
			rep.Child = s.pointerWin.id
		}
		s.treeMu.Unlock()
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	case *xproto.SetInputFocusReq:
		s.treeMu.Lock()
		s.setFocus(q.Focus)
		s.treeMu.Unlock()
	case *xproto.GetInputFocusReq:
		s.treeMu.Lock()
		focus := s.focus
		s.treeMu.Unlock()
		c.reply(func(w *xproto.Writer) { (&xproto.WindowReply{Window: focus}).Encode(w) })
	case *xproto.FakeInputReq:
		s.treeMu.Lock()
		s.handleFakeInput(q)
		s.treeMu.Unlock()
	case *xproto.ScreenshotReq:
		s.handleScreenshot(c, q)
	case *xproto.ClearAreaReq:
		s.handleClearArea(c, q)
	case *xproto.CopyAreaReq:
		s.handleCopyArea(c, q)

	// --- Atoms: read-mostly table behind atomsMu. --------------------
	case *xproto.InternAtomReq:
		s.handleInternAtom(c, q)
	case *xproto.GetAtomNameReq:
		s.atomsMu.RLock()
		name := s.atomNames[q.Atom]
		s.atomsMu.RUnlock()
		c.reply(func(w *xproto.Writer) { (&xproto.NameReply{Name: name}).Encode(w) })

	// --- Fonts: read-mostly map; font objects immutable once open. ---
	case *xproto.OpenFontReq:
		f := openFont(q.Name)
		s.fontsMu.Lock()
		s.fonts[q.Fid] = f
		s.fontsMu.Unlock()
	case *xproto.CloseFontReq:
		s.fontsMu.Lock()
		delete(s.fonts, q.Fid)
		s.fontsMu.Unlock()
	case *xproto.QueryFontReq:
		s.fontsMu.RLock()
		f := s.fonts[q.Fid]
		s.fontsMu.RUnlock()
		if f == nil {
			c.protoError("QueryFont: bad font %d", q.Fid)
			return
		}
		rep := &xproto.QueryFontReply{Ascent: int16(f.ascent), Descent: int16(f.descent), Widths: f.widths()}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	case *xproto.QueryTextExtentsReq:
		s.fontsMu.RLock()
		f := s.fonts[q.Fid]
		s.fontsMu.RUnlock()
		if f == nil {
			c.protoError("QueryTextExtents: bad font %d", q.Fid)
			return
		}
		rep := &xproto.QueryTextExtentsReply{
			Ascent:  int16(f.ascent),
			Descent: int16(f.descent),
			Width:   int32(f.textWidth(q.Text)),
		}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })

	// --- Colors: pure math plus the interned-cell cache. -------------
	case *xproto.AllocColorReq:
		px := uint32(q.R>>8)<<16 | uint32(q.G>>8)<<8 | uint32(q.B>>8)
		rep := &xproto.ColorReply{Found: true, Pixel: px, R: q.R, G: q.G, B: q.B}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	case *xproto.AllocNamedColorReq:
		px, ok := s.allocNamedColor(q.Name)
		rep := &xproto.ColorReply{Found: ok, Pixel: px,
			R: uint16(px>>16&0xff) * 0x101, G: uint16(px>>8&0xff) * 0x101, B: uint16(px&0xff) * 0x101}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })

	// --- Per-client resources: sharded tables, shard locks only. -----
	case *xproto.CreatePixmapReq:
		// Quota is reserved for the nominal flat size before the tiles
		// are allocated; an ID overwrite releases what the displaced
		// pixmap had reserved, so usage tracks the live table exactly.
		bytes := int64(q.Width) * int64(q.Height) * 4
		if !reserveQuota(&s.usedPixmapBytes, s.quotaPixmapBytes.Load(), bytes) {
			s.quotaDenied(c, "pixmap_bytes", "CreatePixmap", s.quotaPixmapBytes.Load())
			return
		}
		p := &pixmap{img: newImageM(int(q.Width), int(q.Height), s.render), bytes: bytes, owner: c}
		p.mu.Instrument(s.metrics.Histogram("lockwait.pixmaps"))
		if old, ok := s.pixmaps.set(q.Pid, p); ok {
			s.usedPixmapBytes.Add(-old.bytes)
		}
	case *xproto.FreePixmapReq:
		if p, ok := s.pixmaps.take(q.Pid); ok {
			s.usedPixmapBytes.Add(-p.bytes)
		}
	case *xproto.CreateGCReq:
		if !reserveQuota(&s.usedGCs, s.quotaGCs.Load(), 1) {
			s.quotaDenied(c, "gcs", "CreateGC", s.quotaGCs.Load())
			return
		}
		gc := &gcontext{foreground: 0, background: 0xffffff, lineWidth: 1, owner: c}
		applyGC(gc, q.Mask, q.Foreground, q.Background, q.LineWidth, q.Font)
		if _, ok := s.gcs.set(q.Gid, gc); ok {
			s.usedGCs.Add(-1)
		}
	case *xproto.ChangeGCReq:
		ok := s.gcs.with(q.Gid, func(gc *gcontext) {
			applyGC(gc, q.Mask, q.Foreground, q.Background, q.LineWidth, q.Font)
		})
		if !ok {
			c.protoError("ChangeGC: bad gc %d", q.Gid)
		}
	case *xproto.FreeGCReq:
		if _, ok := s.gcs.take(q.Gid); ok {
			s.usedGCs.Add(-1)
		}
	case *xproto.CreateCursorReq:
		s.cursors.set(q.Cid, q.Shape)

	// --- Drawing: GC snapshot, then the drawable's own lock. ---------
	case *xproto.PolyLineReq:
		if gc, ok := s.gcSnapshot(q.Gc); ok {
			s.withDrawable(q.Drawable, func(im *image) {
				for i := 0; i+1 < len(q.Points); i++ {
					im.drawLine(int(q.Points[i].X), int(q.Points[i].Y),
						int(q.Points[i+1].X), int(q.Points[i+1].Y), gc.lineWidth, gc.foreground)
				}
			})
		}
	case *xproto.PolySegmentReq:
		if gc, ok := s.gcSnapshot(q.Gc); ok {
			s.withDrawable(q.Drawable, func(im *image) {
				for i := 0; i+1 < len(q.Points); i += 2 {
					im.drawLine(int(q.Points[i].X), int(q.Points[i].Y),
						int(q.Points[i+1].X), int(q.Points[i+1].Y), gc.lineWidth, gc.foreground)
				}
			})
		}
	case *xproto.PolyRectangleReq:
		if gc, ok := s.gcSnapshot(q.Gc); ok {
			s.withDrawable(q.Drawable, func(im *image) {
				for _, rc := range q.Rects {
					im.drawRect(int(rc.X), int(rc.Y), int(rc.W), int(rc.H), gc.lineWidth, gc.foreground)
				}
			})
		}
	case *xproto.FillPolyReq:
		if gc, ok := s.gcSnapshot(q.Gc); ok {
			s.withDrawable(q.Drawable, func(im *image) {
				im.fillPoly(q.Points, gc.foreground)
			})
		}
	case *xproto.PolyFillRectangleReq:
		// The dominant opcode by volume: the whole rect list is one
		// clipped batch pass, large fills fan out across the render
		// pool, and the batch service time lands in render.fill.
		if gc, ok := s.gcSnapshot(q.Gc); ok {
			begin := time.Now()
			s.withDrawable(q.Drawable, func(im *image) {
				im.fillRects(q.Rects, gc.foreground)
			})
			s.render.fill.Observe(time.Since(begin))
		}
	case *xproto.PolyText8Req:
		s.handleDrawText(c, q.Drawable, q.Gc, q.X, q.Y, q.Text, false)
	case *xproto.ImageText8Req:
		s.handleDrawText(c, q.Drawable, q.Gc, q.X, q.Y, q.Text, true)

	// --- Lock-free odds and ends. ------------------------------------
	case *xproto.BellReq:
		// The simulated bell rings silently.
	case *xproto.PingReq:
		c.reply(func(w *xproto.Writer) {})
	case *xproto.SetLatencyReq:
		s.latency.Store(int64(q.Micros) * 1000)
	case *xproto.AttachSessionReq:
		// The session handshake never reaches dispatch: the farm consumes
		// it pre-setup (Farm.ServeConn) and a plain server's request loop
		// skips it without a sequence number (ServeConn). A mid-stream
		// attach on an established connection is a no-op by design.
	case *xproto.UpgradeWireReq:
		// The wire-v2 capability exchange never reaches dispatch either:
		// the request loop consumes it without a sequence number and
		// answers with a KindWireAck frame (handleUpgradeWire). A
		// mid-stream upgrade on an established connection is a no-op.
	case *xproto.WireSegReq:
		// v2 segments are decoded by the request loop (serveWireSeg) and
		// their inner frames dispatched individually; a WireSegReq here
		// means one arrived without negotiation, which the request loop
		// already rejected as a protocol error before dispatch.
	case *xproto.QueryCountersReq:
		rep := &xproto.CountersReply{
			Requests:   c.metrics.Counter("requests").Value(),
			RoundTrips: c.metrics.Counter("roundtrips").Value(),
			EventsSent: c.metrics.Counter("events").Value(),
		}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	default:
		c.protoError("unhandled request %T", req)
	}
}

// applyGC mutates gc per mask. Callers hold the gcs shard lock holding
// gc (CreateGC applies before publication).
func applyGC(gc *gcontext, mask, fg, bg uint32, lw uint16, font xproto.ID) {
	if mask&xproto.GCForeground != 0 {
		gc.foreground = fg
	}
	if mask&xproto.GCBackground != 0 {
		gc.background = bg
	}
	if mask&xproto.GCLineWidth != 0 {
		gc.lineWidth = int(lw)
	}
	if mask&xproto.GCFont != 0 {
		gc.font = font
	}
}

// gcSnapshot returns a value copy of the GC taken under its shard lock,
// so drawing paths work from a stable view without holding any lock
// across the pixel operations (which take the drawable's own lock).
func (s *Server) gcSnapshot(id xproto.ID) (gcontext, bool) {
	var g gcontext
	ok := s.gcs.with(id, func(gc *gcontext) { g = *gc })
	return g, ok
}

// withDrawable runs fn on id's pixel buffer under the lock guarding it:
// the pixmap's own mutex for pixmaps, treeMu for windows. Reports
// whether the drawable exists. Nothing else is held on entry, so this
// respects the lock order trivially.
func (s *Server) withDrawable(id xproto.ID, fn func(im *image)) bool {
	if p, ok := s.pixmaps.get(id); ok {
		p.with(fn)
		return true
	}
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[id]
	if w == nil {
		return false
	}
	fn(w.img)
	return true
}

// handleCreateWindow creates a window under treeMu.
func (s *Server) handleCreateWindow(c *conn, q *xproto.CreateWindowReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	parent := s.windows[q.Parent]
	if parent == nil {
		c.protoError("CreateWindow: bad parent %d", q.Parent)
		return
	}
	if s.windows[q.Wid] != nil {
		c.protoError("CreateWindow: window %d already exists", q.Wid)
		return
	}
	// Reserve after the validity checks so a denied or invalid request
	// leaves usage untouched; destroyWindow releases the reservation.
	if !reserveQuota(&s.usedWindows, s.quotaWindows.Load(), 1) {
		s.quotaDenied(c, "windows", "CreateWindow", s.quotaWindows.Load())
		return
	}
	w := &window{
		id:          q.Wid,
		parent:      parent,
		x:           int(q.X),
		y:           int(q.Y),
		w:           max(int(q.Width), 1),
		h:           max(int(q.Height), 1),
		borderWidth: int(q.BorderWidth),
		background:  q.Background,
		border:      q.Border,
		override:    q.OverrideRedirect,
		img:         newImageM(max(int(q.Width), 1), max(int(q.Height), 1), s.render),
		masks:       make(map[*conn]uint32),
		props:       make(map[xproto.Atom]property),
		owner:       c,
	}
	w.img.fillRect(0, 0, w.w, w.h, w.background)
	if q.EventMask != 0 {
		w.masks[c] = q.EventMask
	}
	parent.children = append(parent.children, w)
	s.windows[q.Wid] = w
}

// handleChangeAttributes updates window attributes under treeMu. The
// cursor table is its own subsystem, so the cursor shape is resolved
// before treeMu is taken — no two subsystem locks ever nest here.
func (s *Server) handleChangeAttributes(c *conn, q *xproto.ChangeWindowAttributesReq) {
	var cursorShape string
	if q.Mask&xproto.AttrCursor != 0 {
		cursorShape, _ = s.cursors.get(q.Cursor)
	}
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("ChangeWindowAttributes: bad window %d", q.Window)
		return
	}
	if q.Mask&xproto.AttrBackground != 0 {
		w.background = q.Background
	}
	if q.Mask&xproto.AttrBorder != 0 {
		w.border = q.Border
	}
	if q.Mask&xproto.AttrEventMask != 0 {
		if q.EventMask == 0 {
			delete(w.masks, c)
		} else {
			w.masks[c] = q.EventMask
		}
	}
	if q.Mask&xproto.AttrOverride != 0 {
		w.override = q.OverrideRedirect
	}
	if q.Mask&xproto.AttrCursor != 0 {
		w.cursor = cursorShape
	}
}

// handleConfigureWindow moves/resizes/restacks a window under treeMu.
func (s *Server) handleConfigureWindow(c *conn, q *xproto.ConfigureWindowReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Window]
	if w == nil || w == s.root {
		c.protoError("ConfigureWindow: bad window %d", q.Window)
		return
	}
	resized := false
	if q.Mask&xproto.CWX != 0 {
		w.x = int(q.X)
	}
	if q.Mask&xproto.CWY != 0 {
		w.y = int(q.Y)
	}
	if q.Mask&xproto.CWWidth != 0 && int(q.Width) != w.w {
		w.w = max(int(q.Width), 1)
		resized = true
	}
	if q.Mask&xproto.CWHeight != 0 && int(q.Height) != w.h {
		w.h = max(int(q.Height), 1)
		resized = true
	}
	if q.Mask&xproto.CWBorderWidth != 0 {
		w.borderWidth = int(q.BorderWidth)
	}
	if q.Mask&xproto.CWStackMode != 0 && w.parent != nil {
		sibs := w.parent.children
		for i, sib := range sibs {
			if sib == w {
				sibs = append(sibs[:i], sibs[i+1:]...)
				break
			}
		}
		if q.StackMode == xproto.StackAbove {
			sibs = append(sibs, w)
		} else {
			sibs = append([]*window{w}, sibs...)
		}
		w.parent.children = sibs
	}
	if resized {
		w.img.resize(w.w, w.h)
		w.img.fillRect(0, 0, w.w, w.h, w.background)
	}
	s.sendConfigureNotify(w)
	if resized && s.viewable(w) {
		s.sendExpose(w)
	}
	s.refreshPointerWindow()
}

// handleGetGeometry answers for windows (under treeMu) and pixmaps
// (dimensions are immutable — no lock needed).
func (s *Server) handleGetGeometry(c *conn, q *xproto.GetGeometryReq) {
	s.treeMu.Lock()
	if w := s.windows[q.Drawable]; w != nil {
		rep := &xproto.GeometryReply{
			Root: s.Root(), X: int16(w.x), Y: int16(w.y),
			Width: uint16(w.w), Height: uint16(w.h), BorderWidth: uint16(w.borderWidth),
		}
		s.treeMu.Unlock()
		c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
		return
	}
	s.treeMu.Unlock()
	if p, ok := s.pixmaps.get(q.Drawable); ok {
		rep := &xproto.GeometryReply{Width: uint16(p.img.w), Height: uint16(p.img.h)}
		c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
		return
	}
	c.protoError("GetGeometry: bad drawable %d", q.Drawable)
}

// handleQueryTree reports a window's parent and children under treeMu.
func (s *Server) handleQueryTree(c *conn, q *xproto.QueryTreeReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("QueryTree: bad window %d", q.Window)
		return
	}
	rep := &xproto.QueryTreeReply{Root: s.Root()}
	if w.parent != nil {
		rep.Parent = w.parent.id
	}
	for _, ch := range w.children {
		rep.Children = append(rep.Children, ch.id)
	}
	c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
}

// handleInternAtom interns an atom: read-lock fast path for the
// intern-once-read-forever workload, write lock only on a miss (with a
// re-check, since another client may have interned between the locks).
func (s *Server) handleInternAtom(c *conn, q *xproto.InternAtomReq) {
	s.atomsMu.RLock()
	a, ok := s.atoms[q.Name]
	s.atomsMu.RUnlock()
	if !ok && !q.OnlyIfExists {
		s.atomsMu.Lock()
		a, ok = s.atoms[q.Name]
		if !ok {
			a = s.nextAtom
			s.nextAtom++
			s.atoms[q.Name] = a
			s.atomNames[a] = q.Name
		}
		s.atomsMu.Unlock()
	}
	c.reply(func(w *xproto.Writer) { (&xproto.AtomReply{Atom: a}).Encode(w) })
}

// handleChangeProperty updates a window property under treeMu.
func (s *Server) handleChangeProperty(c *conn, q *xproto.ChangePropertyReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("ChangeProperty: bad window %d", q.Window)
		return
	}
	old := w.props[q.Property]
	switch q.Mode {
	case xproto.PropModeReplace:
		w.props[q.Property] = property{typ: q.Type, data: q.Data}
	case xproto.PropModeAppend:
		w.props[q.Property] = property{typ: q.Type, data: append(append([]byte(nil), old.data...), q.Data...)}
	case xproto.PropModePrepend:
		w.props[q.Property] = property{typ: q.Type, data: append(append([]byte(nil), q.Data...), old.data...)}
	}
	s.sendPropertyNotify(w, q.Property, xproto.PropertyNewValue)
}

// handleDeleteProperty removes a window property under treeMu.
func (s *Server) handleDeleteProperty(c *conn, q *xproto.DeletePropertyReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Window]
	if w == nil {
		return
	}
	if _, ok := w.props[q.Property]; ok {
		delete(w.props, q.Property)
		s.sendPropertyNotify(w, q.Property, xproto.PropertyDeleted)
	}
}

// handleGetProperty reads (and optionally deletes) a property under
// treeMu.
func (s *Server) handleGetProperty(c *conn, q *xproto.GetPropertyReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("GetProperty: bad window %d", q.Window)
		return
	}
	p, ok := w.props[q.Property]
	rep := &xproto.GetPropertyReply{Found: ok, Type: p.typ, Data: p.data}
	c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
	if ok && q.Delete {
		delete(w.props, q.Property)
		s.sendPropertyNotify(w, q.Property, xproto.PropertyDeleted)
	}
}

// handleListProperties lists a window's property atoms under treeMu.
func (s *Server) handleListProperties(c *conn, q *xproto.ListPropertiesReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("ListProperties: bad window %d", q.Window)
		return
	}
	rep := &xproto.ListPropertiesReply{}
	for a := range w.props {
		rep.Atoms = append(rep.Atoms, a)
	}
	sort.Slice(rep.Atoms, func(i, j int) bool { return rep.Atoms[i] < rep.Atoms[j] })
	c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
}

// handleSetSelectionOwner transfers selection ownership under treeMu.
func (s *Server) handleSetSelectionOwner(c *conn, q *xproto.SetSelectionOwnerReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	var newOwner *window
	if q.Owner != xproto.None {
		newOwner = s.windows[q.Owner]
		if newOwner == nil {
			c.protoError("SetSelectionOwner: bad window %d", q.Owner)
			return
		}
	}
	old := s.selections[q.Selection]
	if old != nil && old.owner != nil && old.owner != newOwner {
		// ICCCM: notify the previous owner that it lost the selection.
		ev := &xproto.Event{
			Type:      xproto.SelectionClear,
			Window:    old.owner.id,
			Selection: q.Selection,
			Time:      s.now(),
		}
		if old.owner.owner != nil {
			old.owner.owner.sendEvent(ev)
		}
	}
	if newOwner == nil {
		delete(s.selections, q.Selection)
	} else {
		s.selections[q.Selection] = &selection{owner: newOwner, time: q.Time}
	}
}

// handleConvertSelection routes a selection conversion under treeMu.
func (s *Server) handleConvertSelection(c *conn, q *xproto.ConvertSelectionReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	requestor := s.windows[q.Requestor]
	if requestor == nil {
		c.protoError("ConvertSelection: bad requestor %d", q.Requestor)
		return
	}
	sel := s.selections[q.Selection]
	if sel == nil || sel.owner == nil || sel.owner.owner == nil {
		// No owner: refuse with property None, per ICCCM.
		ev := &xproto.Event{
			Type:      xproto.SelectionNotify,
			Window:    q.Requestor,
			Requestor: q.Requestor,
			Selection: q.Selection,
			Target:    q.Target,
			Property:  xproto.AtomNone,
			Time:      s.now(),
		}
		if requestor.owner != nil {
			requestor.owner.sendEvent(ev)
		}
		return
	}
	// Forward a SelectionRequest to the owner.
	ev := &xproto.Event{
		Type:      xproto.SelectionRequest,
		Window:    sel.owner.id,
		Requestor: q.Requestor,
		Selection: q.Selection,
		Target:    q.Target,
		Property:  q.Property,
		Time:      q.Time,
	}
	sel.owner.owner.sendEvent(ev)
}

// handleSendEvent forwards a client-constructed event under treeMu.
func (s *Server) handleSendEvent(c *conn, q *xproto.SendEventReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Destination]
	if w == nil {
		c.protoError("SendEvent: bad window %d", q.Destination)
		return
	}
	ev := q.Event
	ev.SendEvent = true
	ev.Window = w.id
	if q.EventMask == 0 {
		// X semantics: deliver to the client that created the window.
		if w.owner != nil {
			w.owner.sendEvent(&ev)
		}
		return
	}
	for cc, mask := range w.masks {
		if mask&q.EventMask != 0 {
			cc.sendEvent(&ev)
		}
	}
}

// handleClearArea clears a window rectangle under treeMu.
func (s *Server) handleClearArea(c *conn, q *xproto.ClearAreaReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("ClearArea: bad window %d", q.Window)
		return
	}
	wd, ht := int(q.Width), int(q.Height)
	if wd == 0 {
		wd = w.w - int(q.X)
	}
	if ht == 0 {
		ht = w.h - int(q.Y)
	}
	w.img.fillRect(int(q.X), int(q.Y), wd, ht, w.background)
}

// handleCopyArea copies pixels between drawables, taking only the locks
// the pair needs: two pixmap locks nest in ascending ID order; a mixed
// window/pixmap pair takes treeMu before the pixmap lock (the
// documented order); window-to-window needs treeMu alone.
func (s *Server) handleCopyArea(c *conn, q *xproto.CopyAreaReq) {
	begin := time.Now()
	defer func() { s.render.copyArea.Observe(time.Since(begin)) }()
	sp, sIsPix := s.pixmaps.get(q.Src)
	dp, dIsPix := s.pixmaps.get(q.Dst)
	copyRect := func(dst, src *image) {
		dst.copyFrom(src, int(q.SrcX), int(q.SrcY), int(q.DstX), int(q.DstY), int(q.Width), int(q.Height))
	}
	switch {
	case sIsPix && dIsPix:
		if sp == dp {
			sp.with(func(im *image) { copyRect(im, im) })
			return
		}
		lo, hi := sp, dp
		if q.Dst < q.Src {
			lo, hi = dp, sp
		}
		lo.mu.Lock()
		hi.mu.Lock()
		copyRect(dp.img, sp.img)
		hi.mu.Unlock()
		lo.mu.Unlock()
	case sIsPix:
		s.treeMu.Lock()
		w := s.windows[q.Dst]
		if w == nil {
			s.treeMu.Unlock()
			c.protoError("CopyArea: bad drawable")
			return
		}
		sp.with(func(im *image) { copyRect(w.img, im) })
		s.treeMu.Unlock()
	case dIsPix:
		s.treeMu.Lock()
		w := s.windows[q.Src]
		if w == nil {
			s.treeMu.Unlock()
			c.protoError("CopyArea: bad drawable")
			return
		}
		dp.with(func(im *image) { copyRect(im, w.img) })
		s.treeMu.Unlock()
	default:
		s.treeMu.Lock()
		src := s.windows[q.Src]
		dst := s.windows[q.Dst]
		if src == nil || dst == nil {
			s.treeMu.Unlock()
			c.protoError("CopyArea: bad drawable")
			return
		}
		copyRect(dst.img, src.img)
		s.treeMu.Unlock()
	}
}

// handleDrawText draws text into a drawable. The GC and font are
// snapshotted under their own locks first (fonts are immutable once
// opened, so f outlives the read lock), then the drawable's lock is
// taken for the pixel work.
func (s *Server) handleDrawText(c *conn, drawable, gcID xproto.ID, x, y int16, text string, imageText bool) {
	gc, ok := s.gcSnapshot(gcID)
	if !ok {
		c.protoError("DrawText: bad drawable or gc")
		return
	}
	s.fontsMu.RLock()
	f := s.fonts[gc.font]
	s.fontsMu.RUnlock()
	if f == nil {
		f = openFont("fixed")
	}
	begin := time.Now()
	drew := s.withDrawable(drawable, func(im *image) {
		if imageText {
			im.fillRect(int(x), int(y)-f.ascent, f.textWidth(text), f.ascent+f.descent, gc.background)
		}
		f.drawString(im, int(x), int(y), text, gc.foreground)
	})
	s.render.text.Observe(time.Since(begin))
	if !drew {
		c.protoError("DrawText: bad drawable or gc")
	}
}
