package xserver

import (
	"sort"

	"repro/internal/xproto"
)

// handle executes one decoded request. Called with s.mu held.
func (s *Server) handle(c *conn, req xproto.Request) {
	switch q := req.(type) {
	case *xproto.CreateWindowReq:
		s.handleCreateWindow(c, q)
	case *xproto.ChangeWindowAttributesReq:
		s.handleChangeAttributes(c, q)
	case *xproto.DestroyWindowReq:
		if w := s.windows[q.Window]; w != nil && w != s.root {
			s.destroyWindow(w)
		}
	case *xproto.MapWindowReq:
		if w := s.windows[q.Window]; w != nil {
			s.mapWindow(w)
		} else {
			c.protoError("MapWindow: bad window %d", q.Window)
		}
	case *xproto.UnmapWindowReq:
		if w := s.windows[q.Window]; w != nil {
			s.unmapWindow(w)
		}
	case *xproto.ConfigureWindowReq:
		s.handleConfigureWindow(c, q)
	case *xproto.GetGeometryReq:
		s.handleGetGeometry(c, q)
	case *xproto.QueryTreeReq:
		s.handleQueryTree(c, q)
	case *xproto.InternAtomReq:
		s.handleInternAtom(c, q)
	case *xproto.GetAtomNameReq:
		name := s.atomNames[q.Atom]
		c.reply(func(w *xproto.Writer) { (&xproto.NameReply{Name: name}).Encode(w) })
	case *xproto.ChangePropertyReq:
		s.handleChangeProperty(c, q)
	case *xproto.DeletePropertyReq:
		s.handleDeleteProperty(c, q)
	case *xproto.GetPropertyReq:
		s.handleGetProperty(c, q)
	case *xproto.ListPropertiesReq:
		s.handleListProperties(c, q)
	case *xproto.SetSelectionOwnerReq:
		s.handleSetSelectionOwner(c, q)
	case *xproto.GetSelectionOwnerReq:
		var owner xproto.ID
		if sel := s.selections[q.Selection]; sel != nil && sel.owner != nil {
			owner = sel.owner.id
		}
		c.reply(func(w *xproto.Writer) { (&xproto.WindowReply{Window: owner}).Encode(w) })
	case *xproto.ConvertSelectionReq:
		s.handleConvertSelection(c, q)
	case *xproto.SendEventReq:
		s.handleSendEvent(c, q)
	case *xproto.QueryPointerReq:
		var child xproto.ID
		if s.pointerWin != nil {
			child = s.pointerWin.id
		}
		c.reply(func(w *xproto.Writer) {
			(&xproto.QueryPointerReply{
				X: int16(s.pointerX), Y: int16(s.pointerY),
				State: s.buttons | s.modifiers, Child: child,
			}).Encode(w)
		})
	case *xproto.SetInputFocusReq:
		s.setFocus(q.Focus)
	case *xproto.GetInputFocusReq:
		c.reply(func(w *xproto.Writer) { (&xproto.WindowReply{Window: s.focus}).Encode(w) })
	case *xproto.OpenFontReq:
		s.fonts[q.Fid] = openFont(q.Name)
	case *xproto.CloseFontReq:
		delete(s.fonts, q.Fid)
	case *xproto.QueryFontReq:
		f := s.fonts[q.Fid]
		if f == nil {
			c.protoError("QueryFont: bad font %d", q.Fid)
			return
		}
		rep := &xproto.QueryFontReply{Ascent: int16(f.ascent), Descent: int16(f.descent), Widths: f.widths()}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	case *xproto.QueryTextExtentsReq:
		f := s.fonts[q.Fid]
		if f == nil {
			c.protoError("QueryTextExtents: bad font %d", q.Fid)
			return
		}
		rep := &xproto.QueryTextExtentsReply{
			Ascent:  int16(f.ascent),
			Descent: int16(f.descent),
			Width:   int32(f.textWidth(q.Text)),
		}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	case *xproto.CreatePixmapReq:
		s.pixmaps[q.Pid] = newImage(int(q.Width), int(q.Height))
	case *xproto.FreePixmapReq:
		delete(s.pixmaps, q.Pid)
	case *xproto.CreateGCReq:
		gc := &gcontext{foreground: 0, background: 0xffffff, lineWidth: 1, owner: c}
		applyGC(gc, q.Mask, q.Foreground, q.Background, q.LineWidth, q.Font)
		s.gcs[q.Gid] = gc
	case *xproto.ChangeGCReq:
		gc := s.gcs[q.Gid]
		if gc == nil {
			c.protoError("ChangeGC: bad gc %d", q.Gid)
			return
		}
		applyGC(gc, q.Mask, q.Foreground, q.Background, q.LineWidth, q.Font)
	case *xproto.FreeGCReq:
		delete(s.gcs, q.Gid)
	case *xproto.ClearAreaReq:
		s.handleClearArea(c, q)
	case *xproto.CopyAreaReq:
		s.handleCopyArea(c, q)
	case *xproto.PolyLineReq:
		if im, gc := s.drawable(q.Drawable), s.gcs[q.Gc]; im != nil && gc != nil {
			for i := 0; i+1 < len(q.Points); i++ {
				im.drawLine(int(q.Points[i].X), int(q.Points[i].Y),
					int(q.Points[i+1].X), int(q.Points[i+1].Y), gc.lineWidth, gc.foreground)
			}
		}
	case *xproto.PolySegmentReq:
		if im, gc := s.drawable(q.Drawable), s.gcs[q.Gc]; im != nil && gc != nil {
			for i := 0; i+1 < len(q.Points); i += 2 {
				im.drawLine(int(q.Points[i].X), int(q.Points[i].Y),
					int(q.Points[i+1].X), int(q.Points[i+1].Y), gc.lineWidth, gc.foreground)
			}
		}
	case *xproto.PolyRectangleReq:
		if im, gc := s.drawable(q.Drawable), s.gcs[q.Gc]; im != nil && gc != nil {
			for _, rc := range q.Rects {
				im.drawRect(int(rc.X), int(rc.Y), int(rc.W), int(rc.H), gc.lineWidth, gc.foreground)
			}
		}
	case *xproto.FillPolyReq:
		if im, gc := s.drawable(q.Drawable), s.gcs[q.Gc]; im != nil && gc != nil {
			im.fillPoly(q.Points, gc.foreground)
		}
	case *xproto.PolyFillRectangleReq:
		if im, gc := s.drawable(q.Drawable), s.gcs[q.Gc]; im != nil && gc != nil {
			for _, rc := range q.Rects {
				im.fillRect(int(rc.X), int(rc.Y), int(rc.W), int(rc.H), gc.foreground)
			}
		}
	case *xproto.PolyText8Req:
		s.handleDrawText(c, q.Drawable, q.Gc, q.X, q.Y, q.Text, false)
	case *xproto.ImageText8Req:
		s.handleDrawText(c, q.Drawable, q.Gc, q.X, q.Y, q.Text, true)
	case *xproto.AllocColorReq:
		px := uint32(q.R>>8)<<16 | uint32(q.G>>8)<<8 | uint32(q.B>>8)
		rep := &xproto.ColorReply{Found: true, Pixel: px, R: q.R, G: q.G, B: q.B}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	case *xproto.AllocNamedColorReq:
		px, ok := lookupColor(q.Name)
		rep := &xproto.ColorReply{Found: ok, Pixel: px,
			R: uint16(px>>16&0xff) * 0x101, G: uint16(px>>8&0xff) * 0x101, B: uint16(px&0xff) * 0x101}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	case *xproto.CreateCursorReq:
		s.cursors[q.Cid] = q.Shape
	case *xproto.BellReq:
		// The simulated bell rings silently.
	case *xproto.FakeInputReq:
		s.handleFakeInput(q)
	case *xproto.ScreenshotReq:
		s.handleScreenshot(c, q)
	case *xproto.PingReq:
		c.reply(func(w *xproto.Writer) {})
	case *xproto.SetLatencyReq:
		s.latency.Store(int64(q.Micros) * 1000)
	case *xproto.QueryCountersReq:
		rep := &xproto.CountersReply{
			Requests:   c.metrics.Counter("requests").Value(),
			RoundTrips: c.metrics.Counter("roundtrips").Value(),
			EventsSent: c.metrics.Counter("events").Value(),
		}
		c.reply(func(w *xproto.Writer) { rep.Encode(w) })
	default:
		c.protoError("unhandled request %T", req)
	}
}

func applyGC(gc *gcontext, mask, fg, bg uint32, lw uint16, font xproto.ID) {
	if mask&xproto.GCForeground != 0 {
		gc.foreground = fg
	}
	if mask&xproto.GCBackground != 0 {
		gc.background = bg
	}
	if mask&xproto.GCLineWidth != 0 {
		gc.lineWidth = int(lw)
	}
	if mask&xproto.GCFont != 0 {
		gc.font = font
	}
}

// drawable resolves an ID to its pixel buffer (window or pixmap). Called with s.mu held.
func (s *Server) drawable(id xproto.ID) *image {
	if w := s.windows[id]; w != nil {
		return w.img
	}
	return s.pixmaps[id]
}

// Called with s.mu held.
func (s *Server) handleCreateWindow(c *conn, q *xproto.CreateWindowReq) {
	parent := s.windows[q.Parent]
	if parent == nil {
		c.protoError("CreateWindow: bad parent %d", q.Parent)
		return
	}
	if s.windows[q.Wid] != nil {
		c.protoError("CreateWindow: window %d already exists", q.Wid)
		return
	}
	w := &window{
		id:          q.Wid,
		parent:      parent,
		x:           int(q.X),
		y:           int(q.Y),
		w:           max(int(q.Width), 1),
		h:           max(int(q.Height), 1),
		borderWidth: int(q.BorderWidth),
		background:  q.Background,
		border:      q.Border,
		override:    q.OverrideRedirect,
		img:         newImage(max(int(q.Width), 1), max(int(q.Height), 1)),
		masks:       make(map[*conn]uint32),
		props:       make(map[xproto.Atom]property),
		owner:       c,
	}
	w.img.fillRect(0, 0, w.w, w.h, w.background)
	if q.EventMask != 0 {
		w.masks[c] = q.EventMask
	}
	parent.children = append(parent.children, w)
	s.windows[q.Wid] = w
}

// Called with s.mu held.
func (s *Server) handleChangeAttributes(c *conn, q *xproto.ChangeWindowAttributesReq) {
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("ChangeWindowAttributes: bad window %d", q.Window)
		return
	}
	if q.Mask&xproto.AttrBackground != 0 {
		w.background = q.Background
	}
	if q.Mask&xproto.AttrBorder != 0 {
		w.border = q.Border
	}
	if q.Mask&xproto.AttrEventMask != 0 {
		if q.EventMask == 0 {
			delete(w.masks, c)
		} else {
			w.masks[c] = q.EventMask
		}
	}
	if q.Mask&xproto.AttrOverride != 0 {
		w.override = q.OverrideRedirect
	}
	if q.Mask&xproto.AttrCursor != 0 {
		w.cursor = s.cursors[q.Cursor]
	}
}

// Called with s.mu held.
func (s *Server) handleConfigureWindow(c *conn, q *xproto.ConfigureWindowReq) {
	w := s.windows[q.Window]
	if w == nil || w == s.root {
		c.protoError("ConfigureWindow: bad window %d", q.Window)
		return
	}
	resized := false
	if q.Mask&xproto.CWX != 0 {
		w.x = int(q.X)
	}
	if q.Mask&xproto.CWY != 0 {
		w.y = int(q.Y)
	}
	if q.Mask&xproto.CWWidth != 0 && int(q.Width) != w.w {
		w.w = max(int(q.Width), 1)
		resized = true
	}
	if q.Mask&xproto.CWHeight != 0 && int(q.Height) != w.h {
		w.h = max(int(q.Height), 1)
		resized = true
	}
	if q.Mask&xproto.CWBorderWidth != 0 {
		w.borderWidth = int(q.BorderWidth)
	}
	if q.Mask&xproto.CWStackMode != 0 && w.parent != nil {
		sibs := w.parent.children
		for i, sib := range sibs {
			if sib == w {
				sibs = append(sibs[:i], sibs[i+1:]...)
				break
			}
		}
		if q.StackMode == xproto.StackAbove {
			sibs = append(sibs, w)
		} else {
			sibs = append([]*window{w}, sibs...)
		}
		w.parent.children = sibs
	}
	if resized {
		w.img.resize(w.w, w.h)
		w.img.fillRect(0, 0, w.w, w.h, w.background)
	}
	s.sendConfigureNotify(w)
	if resized && s.viewable(w) {
		s.sendExpose(w)
	}
	s.refreshPointerWindow()
}

// Called with s.mu held.
func (s *Server) handleGetGeometry(c *conn, q *xproto.GetGeometryReq) {
	if w := s.windows[q.Drawable]; w != nil {
		rep := &xproto.GeometryReply{
			Root: s.Root(), X: int16(w.x), Y: int16(w.y),
			Width: uint16(w.w), Height: uint16(w.h), BorderWidth: uint16(w.borderWidth),
		}
		c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
		return
	}
	if im := s.pixmaps[q.Drawable]; im != nil {
		rep := &xproto.GeometryReply{Width: uint16(im.w), Height: uint16(im.h)}
		c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
		return
	}
	c.protoError("GetGeometry: bad drawable %d", q.Drawable)
}

// Called with s.mu held.
func (s *Server) handleQueryTree(c *conn, q *xproto.QueryTreeReq) {
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("QueryTree: bad window %d", q.Window)
		return
	}
	rep := &xproto.QueryTreeReply{Root: s.Root()}
	if w.parent != nil {
		rep.Parent = w.parent.id
	}
	for _, ch := range w.children {
		rep.Children = append(rep.Children, ch.id)
	}
	c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
}

// Called with s.mu held.
func (s *Server) handleInternAtom(c *conn, q *xproto.InternAtomReq) {
	a, ok := s.atoms[q.Name]
	if !ok && !q.OnlyIfExists {
		a = s.nextAtom
		s.nextAtom++
		s.atoms[q.Name] = a
		s.atomNames[a] = q.Name
	}
	c.reply(func(w *xproto.Writer) { (&xproto.AtomReply{Atom: a}).Encode(w) })
}

// Called with s.mu held.
func (s *Server) handleChangeProperty(c *conn, q *xproto.ChangePropertyReq) {
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("ChangeProperty: bad window %d", q.Window)
		return
	}
	old := w.props[q.Property]
	switch q.Mode {
	case xproto.PropModeReplace:
		w.props[q.Property] = property{typ: q.Type, data: q.Data}
	case xproto.PropModeAppend:
		w.props[q.Property] = property{typ: q.Type, data: append(append([]byte(nil), old.data...), q.Data...)}
	case xproto.PropModePrepend:
		w.props[q.Property] = property{typ: q.Type, data: append(append([]byte(nil), q.Data...), old.data...)}
	}
	s.sendPropertyNotify(w, q.Property, xproto.PropertyNewValue)
}

// Called with s.mu held.
func (s *Server) handleDeleteProperty(c *conn, q *xproto.DeletePropertyReq) {
	w := s.windows[q.Window]
	if w == nil {
		return
	}
	if _, ok := w.props[q.Property]; ok {
		delete(w.props, q.Property)
		s.sendPropertyNotify(w, q.Property, xproto.PropertyDeleted)
	}
}

// Called with s.mu held.
func (s *Server) handleGetProperty(c *conn, q *xproto.GetPropertyReq) {
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("GetProperty: bad window %d", q.Window)
		return
	}
	p, ok := w.props[q.Property]
	rep := &xproto.GetPropertyReply{Found: ok, Type: p.typ, Data: p.data}
	c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
	if ok && q.Delete {
		delete(w.props, q.Property)
		s.sendPropertyNotify(w, q.Property, xproto.PropertyDeleted)
	}
}

// Called with s.mu held.
func (s *Server) handleListProperties(c *conn, q *xproto.ListPropertiesReq) {
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("ListProperties: bad window %d", q.Window)
		return
	}
	rep := &xproto.ListPropertiesReply{}
	for a := range w.props {
		rep.Atoms = append(rep.Atoms, a)
	}
	sort.Slice(rep.Atoms, func(i, j int) bool { return rep.Atoms[i] < rep.Atoms[j] })
	c.reply(func(wr *xproto.Writer) { rep.Encode(wr) })
}

// Called with s.mu held.
func (s *Server) handleSetSelectionOwner(c *conn, q *xproto.SetSelectionOwnerReq) {
	var newOwner *window
	if q.Owner != xproto.None {
		newOwner = s.windows[q.Owner]
		if newOwner == nil {
			c.protoError("SetSelectionOwner: bad window %d", q.Owner)
			return
		}
	}
	old := s.selections[q.Selection]
	if old != nil && old.owner != nil && old.owner != newOwner {
		// ICCCM: notify the previous owner that it lost the selection.
		ev := &xproto.Event{
			Type:      xproto.SelectionClear,
			Window:    old.owner.id,
			Selection: q.Selection,
			Time:      s.now(),
		}
		if old.owner.owner != nil {
			old.owner.owner.sendEvent(ev)
		}
	}
	if newOwner == nil {
		delete(s.selections, q.Selection)
	} else {
		s.selections[q.Selection] = &selection{owner: newOwner, time: q.Time}
	}
}

// Called with s.mu held.
func (s *Server) handleConvertSelection(c *conn, q *xproto.ConvertSelectionReq) {
	requestor := s.windows[q.Requestor]
	if requestor == nil {
		c.protoError("ConvertSelection: bad requestor %d", q.Requestor)
		return
	}
	sel := s.selections[q.Selection]
	if sel == nil || sel.owner == nil || sel.owner.owner == nil {
		// No owner: refuse with property None, per ICCCM.
		ev := &xproto.Event{
			Type:      xproto.SelectionNotify,
			Window:    q.Requestor,
			Requestor: q.Requestor,
			Selection: q.Selection,
			Target:    q.Target,
			Property:  xproto.AtomNone,
			Time:      s.now(),
		}
		if requestor.owner != nil {
			requestor.owner.sendEvent(ev)
		}
		return
	}
	// Forward a SelectionRequest to the owner.
	ev := &xproto.Event{
		Type:      xproto.SelectionRequest,
		Window:    sel.owner.id,
		Requestor: q.Requestor,
		Selection: q.Selection,
		Target:    q.Target,
		Property:  q.Property,
		Time:      q.Time,
	}
	sel.owner.owner.sendEvent(ev)
}

// Called with s.mu held.
func (s *Server) handleSendEvent(c *conn, q *xproto.SendEventReq) {
	w := s.windows[q.Destination]
	if w == nil {
		c.protoError("SendEvent: bad window %d", q.Destination)
		return
	}
	ev := q.Event
	ev.SendEvent = true
	ev.Window = w.id
	if q.EventMask == 0 {
		// X semantics: deliver to the client that created the window.
		if w.owner != nil {
			w.owner.sendEvent(&ev)
		}
		return
	}
	for cc, mask := range w.masks {
		if mask&q.EventMask != 0 {
			cc.sendEvent(&ev)
		}
	}
}

// Called with s.mu held.
func (s *Server) handleClearArea(c *conn, q *xproto.ClearAreaReq) {
	w := s.windows[q.Window]
	if w == nil {
		c.protoError("ClearArea: bad window %d", q.Window)
		return
	}
	wd, ht := int(q.Width), int(q.Height)
	if wd == 0 {
		wd = w.w - int(q.X)
	}
	if ht == 0 {
		ht = w.h - int(q.Y)
	}
	w.img.fillRect(int(q.X), int(q.Y), wd, ht, w.background)
}

// Called with s.mu held.
func (s *Server) handleCopyArea(c *conn, q *xproto.CopyAreaReq) {
	src := s.drawable(q.Src)
	dst := s.drawable(q.Dst)
	if src == nil || dst == nil {
		c.protoError("CopyArea: bad drawable")
		return
	}
	dst.copyFrom(src, int(q.SrcX), int(q.SrcY), int(q.DstX), int(q.DstY), int(q.Width), int(q.Height))
}

// Called with s.mu held.
func (s *Server) handleDrawText(c *conn, drawable, gcID xproto.ID, x, y int16, text string, imageText bool) {
	im := s.drawable(drawable)
	gc := s.gcs[gcID]
	if im == nil || gc == nil {
		c.protoError("DrawText: bad drawable or gc")
		return
	}
	f := s.fonts[gc.font]
	if f == nil {
		f = openFont("fixed")
	}
	if imageText {
		im.fillRect(int(x), int(y)-f.ascent, f.textWidth(text), f.ascent+f.descent, gc.background)
	}
	f.drawString(im, int(x), int(y), text, gc.foreground)
}
