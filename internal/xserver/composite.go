package xserver

import (
	"time"

	"repro/internal/xproto"
)

// Title-bar geometry for the server's trivial built-in window manager
// decoration, standing in for twm in the paper's Figure 10.
const (
	titleBarHeight = 18
	titleBarColor  = 0x6a5acd
	titleTextColor = 0xffffff
	frameColor     = 0x000000
)

// compOp is one step of a composite plan: a paint operation recorded
// under treeMu and replayed outside it. Blits reference copy-on-write
// snapshots of window images, so replaying never reads mutable tree
// state.
type compOp struct {
	kind       compOpKind
	x, y, w, h int
	lw         int
	pixel      uint32
	src        *image // opBlit: a snapshot, safe to read with no lock
	text       string
}

type compOpKind uint8

const (
	opFill compOpKind = iota
	opFrame
	opBlit
	opText
)

// compositePlan appends the paint operations for w and its mapped
// descendants, with w's content origin at (ox, oy), in exactly the
// order composite used to paint them: border, content, children
// bottom-to-top, then the window-manager decoration for top-level
// windows. Called with s.treeMu held; the returned ops own snapshots
// and copied strings, nothing aliasing the tree.
func (s *Server) compositePlan(ops []compOp, w *window, ox, oy int) []compOp {
	// Border.
	if w.borderWidth > 0 {
		bw := w.borderWidth
		ops = append(ops,
			compOp{kind: opFill, x: ox - bw, y: oy - bw, w: w.w + 2*bw, h: bw, pixel: w.border},
			compOp{kind: opFill, x: ox - bw, y: oy + w.h, w: w.w + 2*bw, h: bw, pixel: w.border},
			compOp{kind: opFill, x: ox - bw, y: oy, w: bw, h: w.h, pixel: w.border},
			compOp{kind: opFill, x: ox + w.w, y: oy, w: bw, h: w.h, pixel: w.border},
		)
	}
	// Content.
	ops = append(ops, compOp{kind: opBlit, src: w.img.snapshot(), x: ox, y: oy, w: w.w, h: w.h})
	// Children bottom-to-top.
	for _, ch := range w.children {
		if !ch.mapped {
			continue
		}
		ops = s.compositePlan(ops, ch, ox+ch.x+ch.borderWidth, oy+ch.y+ch.borderWidth)
	}
	// Window-manager decoration for top-level windows: a title bar above
	// the window showing WM_NAME, like twm in Figure 10 of the paper.
	if w.parent == s.root && !w.override {
		title := ""
		if p, ok := w.props[xproto.AtomWMName]; ok {
			title = string(p.data)
		}
		bw := w.borderWidth
		ops = append(ops,
			compOp{kind: opFill, x: ox - bw, y: oy - bw - titleBarHeight, w: w.w + 2*bw, h: titleBarHeight, pixel: titleBarColor},
			compOp{kind: opFrame, x: ox - bw, y: oy - bw - titleBarHeight, w: w.w + 2*bw, h: titleBarHeight, lw: 1, pixel: frameColor},
			compOp{kind: opText, x: ox + 4, y: oy - bw - titleBarHeight + 13, text: title, pixel: titleTextColor},
		)
	}
	return ops
}

// renderPlan replays a composite plan into dst. Needs no lock: fills
// and frames are pure geometry, blits read immutable snapshots, and the
// title font is stateless.
func renderPlan(dst *image, ops []compOp) {
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case opFill:
			dst.fillRect(op.x, op.y, op.w, op.h, op.pixel)
		case opFrame:
			dst.drawRect(op.x, op.y, op.w, op.h, op.lw, op.pixel)
		case opBlit:
			dst.copyFrom(op.src, 0, 0, op.x, op.y, op.w, op.h)
		case opText:
			openFont("fixed").drawString(dst, op.x, op.y, op.text, op.pixel)
		}
	}
}

// handleScreenshot renders the composited screen (or one window's
// subtree) and replies with packed RGB pixels. treeMu is held only for
// the plan: a walk of the tree recording geometry and copy-on-write
// tile snapshots (pointer grabs, no pixel copies). The expensive work —
// composing the plan into a fresh image and packing RGB triples
// straight into the reply buffer — happens after treeMu is released, so
// observers taking screenshots never stall painters for longer than the
// snapshot walk.
func (s *Server) handleScreenshot(c *conn, q *xproto.ScreenshotReq) {
	var ops []compOp
	var shotW, shotH int
	s.treeMu.Lock()
	if q.Window == xproto.None || q.Window == s.Root() {
		shotW, shotH = s.width, s.height
		ops = append(ops, compOp{kind: opFill, x: 0, y: 0, w: s.width, h: s.height, pixel: s.root.background})
		ops = append(ops, compOp{kind: opBlit, src: s.root.img.snapshot(), x: 0, y: 0, w: s.width, h: s.height})
		for _, ch := range s.root.children {
			if ch.mapped {
				ops = s.compositePlan(ops, ch, ch.x+ch.borderWidth, ch.y+ch.borderWidth)
			}
		}
	} else {
		w := s.windows[q.Window]
		if w == nil {
			s.treeMu.Unlock()
			c.protoError("Screenshot: bad window %d", q.Window)
			return
		}
		bw := w.borderWidth
		dh := decorationHeight(s, w)
		shotW, shotH = w.w+2*bw, w.h+2*bw+dh
		ops = s.compositePlan(ops, w, bw, bw+dh)
	}
	s.treeMu.Unlock()

	begin := time.Now()
	shot := newImage(shotW, shotH)
	renderPlan(shot, ops)
	c.reply(func(w *xproto.Writer) {
		// Pack pixels straight into the reply payload: exactly w*h*3
		// bytes, indexed directly, no intermediate slice.
		dst := xproto.AppendScreenshotPixels(w, uint16(shot.w), uint16(shot.h), shot.w*shot.h*3)
		shot.packRGB(dst)
	})
	s.render.screenshot.Observe(time.Since(begin))
}

func decorationHeight(s *Server, w *window) int {
	if w.parent == s.root && !w.override {
		return titleBarHeight
	}
	return 0
}
