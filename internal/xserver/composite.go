package xserver

import (
	"repro/internal/xproto"
)

// Title-bar geometry for the server's trivial built-in window manager
// decoration, standing in for twm in the paper's Figure 10.
const (
	titleBarHeight = 18
	titleBarColor  = 0x6a5acd
	titleTextColor = 0xffffff
	frameColor     = 0x000000
)

// composite recursively paints w and its mapped descendants into dst with
// w's content origin at (ox, oy). Called with s.treeMu held.
func (s *Server) composite(dst *image, w *window, ox, oy int) {
	// Border.
	if w.borderWidth > 0 {
		bw := w.borderWidth
		dst.fillRect(ox-bw, oy-bw, w.w+2*bw, bw, w.border)
		dst.fillRect(ox-bw, oy+w.h, w.w+2*bw, bw, w.border)
		dst.fillRect(ox-bw, oy, bw, w.h, w.border)
		dst.fillRect(ox+w.w, oy, bw, w.h, w.border)
	}
	// Content.
	dst.copyFrom(w.img, 0, 0, ox, oy, w.w, w.h)
	// Children bottom-to-top.
	for _, ch := range w.children {
		if !ch.mapped {
			continue
		}
		s.composite(dst, ch, ox+ch.x+ch.borderWidth, oy+ch.y+ch.borderWidth)
	}
	// Window-manager decoration for top-level windows: a title bar above
	// the window showing WM_NAME, like twm in Figure 10 of the paper.
	if w.parent == s.root && !w.override {
		title := ""
		if p, ok := w.props[xproto.AtomWMName]; ok {
			title = string(p.data)
		}
		bw := w.borderWidth
		dst.fillRect(ox-bw, oy-bw-titleBarHeight, w.w+2*bw, titleBarHeight, titleBarColor)
		dst.drawRect(ox-bw, oy-bw-titleBarHeight, w.w+2*bw, titleBarHeight, 1, frameColor)
		f := openFont("fixed")
		f.drawString(dst, ox+4, oy-bw-titleBarHeight+13, title, titleTextColor)
	}
}

// handleScreenshot renders the composited screen (or one window's
// subtree) and replies with packed RGB pixels. Takes s.treeMu for the
// whole render so the tree cannot change mid-composite.
func (s *Server) handleScreenshot(c *conn, q *xproto.ScreenshotReq) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	var shot *image
	if q.Window == xproto.None || q.Window == s.Root() {
		shot = newImage(s.width, s.height)
		shot.fillRect(0, 0, s.width, s.height, s.root.background)
		shot.copyFrom(s.root.img, 0, 0, 0, 0, s.width, s.height)
		for _, ch := range s.root.children {
			if ch.mapped {
				s.composite(shot, ch, ch.x+ch.borderWidth, ch.y+ch.borderWidth)
			}
		}
	} else {
		w := s.windows[q.Window]
		if w == nil {
			c.protoError("Screenshot: bad window %d", q.Window)
			return
		}
		bw := w.borderWidth
		shot = newImage(w.w+2*bw, w.h+2*bw+decorationHeight(s, w))
		s.composite(shot, w, bw, bw+decorationHeight(s, w))
	}
	pixels := make([]byte, 0, shot.w*shot.h*3)
	for _, px := range shot.pix {
		pixels = append(pixels, byte(px>>16), byte(px>>8), byte(px))
	}
	rep := &xproto.ScreenshotReply{Width: uint16(shot.w), Height: uint16(shot.h), Pixels: pixels}
	c.reply(func(w *xproto.Writer) { rep.Encode(w) })
}

func decorationHeight(s *Server, w *window) int {
	if w.parent == s.root && !w.override {
		return titleBarHeight
	}
	return 0
}
