package xserver

import (
	"strconv"
	"strings"
)

// namedColors is the server's color database, the analogue of X11's
// rgb.txt. Names are matched case- and space-insensitively, as X does.
// The set covers the colors the paper and Motif-era defaults use
// (MediumSeaGreen for Tk's cache example, Bisque for Motif backgrounds,
// PalePink1 from the paper's configure example) plus the common basics.
var namedColors = map[string]uint32{
	"white":          0xffffff,
	"black":          0x000000,
	"red":            0xff0000,
	"green":          0x00ff00,
	"blue":           0x0000ff,
	"yellow":         0xffff00,
	"cyan":           0x00ffff,
	"magenta":        0xff00ff,
	"gray":           0xbebebe,
	"grey":           0xbebebe,
	"darkgray":       0xa9a9a9,
	"darkgrey":       0xa9a9a9,
	"lightgray":      0xd3d3d3,
	"lightgrey":      0xd3d3d3,
	"gray25":         0x404040,
	"gray50":         0x7f7f7f,
	"gray75":         0xbfbfbf,
	"gray85":         0xd9d9d9,
	"gray90":         0xe5e5e5,
	"gray95":         0xf2f2f2,
	"dimgray":        0x696969,
	"slategray":      0x708090,
	"navy":           0x000080,
	"navyblue":       0x000080,
	"royalblue":      0x4169e1,
	"steelblue":      0x4682b4,
	"lightsteelblue": 0xb0c4de,
	"skyblue":        0x87ceeb,
	"lightblue":      0xadd8e6,
	"cadetblue":      0x5f9ea0,
	"dodgerblue":     0x1e90ff,
	"cornflowerblue": 0x6495ed,
	"mediumblue":     0x0000cd,
	"darkblue":       0x00008b,
	"darkgreen":      0x006400,
	"forestgreen":    0x228b22,
	"seagreen":       0x2e8b57,
	"mediumseagreen": 0x3cb371,
	"limegreen":      0x32cd32,
	"palegreen":      0x98fb98,
	"springgreen":    0x00ff7f,
	"darkred":        0x8b0000,
	"firebrick":      0xb22222,
	"indianred":      0xcd5c5c,
	"salmon":         0xfa8072,
	"lightsalmon":    0xffa07a,
	"orange":         0xffa500,
	"darkorange":     0xff8c00,
	"coral":          0xff7f50,
	"tomato":         0xff6347,
	"orangered":      0xff4500,
	"gold":           0xffd700,
	"goldenrod":      0xdaa520,
	"khaki":          0xf0e68c,
	"wheat":          0xf5deb3,
	"tan":            0xd2b48c,
	"chocolate":      0xd2691e,
	"brown":          0xa52a2a,
	"sienna":         0xa0522d,
	"maroon":         0xb03060,
	"pink":           0xffc0cb,
	"lightpink":      0xffb6c1,
	"palepink1":      0xffe4e1, // from the paper's configure example
	"hotpink":        0xff69b4,
	"deeppink":       0xff1493,
	"violet":         0xee82ee,
	"plum":           0xdda0dd,
	"orchid":         0xda70d6,
	"purple":         0xa020f0,
	"violetred":      0xd02090,
	"lavender":       0xe6e6fa,
	"bisque":         0xffe4c4,
	"bisque1":        0xffe4c4,
	"bisque2":        0xeed5b7,
	"bisque3":        0xcdb79e,
	"antiquewhite":   0xfaebd7,
	"ivory":          0xfffff0,
	"beige":          0xf5f5dc,
	"linen":          0xfaf0e6,
	"snow":           0xfffafa,
	"seashell":       0xfff5ee,
	"honeydew":       0xf0fff0,
	"aliceblue":      0xf0f8ff,
	"ghostwhite":     0xf8f8ff,
	"whitesmoke":     0xf5f5f5,
	"turquoise":      0x40e0d0,
	"aquamarine":     0x7fffd4,
	"lightyellow":    0xffffe0,
	"lemonchiffon":   0xfffacd,
	"olivedrab":      0x6b8e23,
	"darkolivegreen": 0x556b2f,
	"midnightblue":   0x191970,
	"slateblue":      0x6a5acd,
	"mediumorchid":   0xba55d3,
	"thistle":        0xd8bfd8,
	"peachpuff":      0xffdab9,
	"navajowhite":    0xffdead,
	"moccasin":       0xffe4b5,
	"cornsilk":       0xfff8dc,
}

// lookupColor resolves a color name or #RGB/#RRGGBB/#RRRRGGGGBBBB spec to
// a pixel.
func lookupColor(name string) (uint32, bool) {
	if strings.HasPrefix(name, "#") {
		hex := name[1:]
		var r, g, b uint32
		switch len(hex) {
		case 3:
			v, err := strconv.ParseUint(hex, 16, 32)
			if err != nil {
				return 0, false
			}
			r = uint32(v>>8&0xf) * 0x11
			g = uint32(v>>4&0xf) * 0x11
			b = uint32(v&0xf) * 0x11
		case 6:
			v, err := strconv.ParseUint(hex, 16, 32)
			if err != nil {
				return 0, false
			}
			return uint32(v), true
		case 12:
			v, err := strconv.ParseUint(hex, 16, 64)
			if err != nil {
				return 0, false
			}
			r = uint32(v >> 40 & 0xff)
			g = uint32(v >> 24 & 0xff)
			b = uint32(v >> 8 & 0xff)
		default:
			return 0, false
		}
		return r<<16 | g<<8 | b, true
	}
	key := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	px, ok := namedColors[key]
	return px, ok
}

// allocNamedColor resolves a color spec through the server's interned
// cell cache (the stand-in for colormap cell allocation): a read-lock
// hit for specs seen before — the common case once an application's
// palette is warm — and a write-lock insert on first use. Misses are
// cached too, so repeated bad specs don't re-parse.
func (s *Server) allocNamedColor(name string) (uint32, bool) {
	key := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	s.colorsMu.RLock()
	px, ok := s.colorCells[key]
	s.colorsMu.RUnlock()
	if ok {
		return px &^ cellMiss, px&cellMiss == 0
	}
	px, found := lookupColor(name)
	cell := px
	if !found {
		cell = cellMiss
	}
	s.colorsMu.Lock()
	s.colorCells[key] = cell
	s.colorsMu.Unlock()
	return px, found
}

// cellMiss marks a cached lookup failure in colorCells; pixel values
// are 24-bit RGB, so bit 31 is free.
const cellMiss = uint32(1) << 31
