package widget

import (
	"fmt"
	"strings"

	"repro/internal/tcl"
	"repro/internal/tk"
)

// Message implements the Message class: a multi-line text display that
// wraps its string to honour an aspect ratio or a fixed width.
type Message struct {
	base
	lines []string
}

func messageSpecs() []tk.OptionSpec {
	specs := standardSpecs(DefBackground)
	return append(specs,
		tk.OptionSpec{Name: "-text", DBName: "text", DBClass: "Text", Default: ""},
		tk.OptionSpec{Name: "-width", DBName: "width", DBClass: "Width", Default: "0"},
		tk.OptionSpec{Name: "-aspect", DBName: "aspect", DBClass: "Aspect", Default: "150"},
		tk.OptionSpec{Name: "-justify", DBName: "justify", DBClass: "Justify", Default: "left"},
		tk.OptionSpec{Name: "-padx", DBName: "padX", DBClass: "Pad", Default: "4"},
		tk.OptionSpec{Name: "-pady", DBName: "padY", DBClass: "Pad", Default: "2"},
	)
}

func registerMessage(app *tk.App) {
	app.Interp.Register("message", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "message pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Message", messageSpecs(), false)
		if err != nil {
			return "", err
		}
		m := &Message{base: *b}
		m.win.Widget = m
		m.geomAndExposure()
		return m.install(m, args[2:])
	})
}

// wrap breaks text into lines no wider than maxWidth pixels, honouring
// embedded newlines and breaking at spaces.
func (m *Message) wrap(text string, maxWidth int) []string {
	var out []string
	for _, para := range strings.Split(text, "\n") {
		if para == "" {
			out = append(out, "")
			continue
		}
		words := strings.Fields(para)
		cur := ""
		for _, w := range words {
			candidate := cur
			if candidate != "" {
				candidate += " "
			}
			candidate += w
			if cur != "" && m.font.TextWidth(candidate) > maxWidth {
				out = append(out, cur)
				cur = w
				continue
			}
			cur = candidate
		}
		out = append(out, cur)
	}
	return out
}

// recompute implements subcommander: choose a width (fixed or from the
// aspect ratio), wrap, and request space.
func (m *Message) recompute() error {
	if err := m.resolve(); err != nil {
		return err
	}
	text := m.cv.Get("-text")
	padX := m.cv.GetInt("-padx", 4)
	padY := m.cv.GetInt("-pady", 2)
	bd := m.cv.GetInt("-borderwidth", 2)
	width := m.cv.GetInt("-width", 0)
	if width <= 0 {
		// Pick a width that roughly honours aspect = 100*w/h.
		aspect := m.cv.GetInt("-aspect", 150)
		if aspect < 1 {
			aspect = 150
		}
		lower, upper := 1, m.font.TextWidth(text)+1
		for lower < upper {
			mid := (lower + upper) / 2
			lines := m.wrap(text, mid)
			h := len(lines) * m.font.LineHeight()
			if h == 0 {
				h = m.font.LineHeight()
			}
			if mid*100 >= aspect*h {
				upper = mid
			} else {
				lower = mid + 1
			}
		}
		width = lower
	}
	m.lines = m.wrap(text, width)
	maxW := 0
	for _, l := range m.lines {
		if w := m.font.TextWidth(l); w > maxW {
			maxW = w
		}
	}
	h := len(m.lines) * m.font.LineHeight()
	m.win.GeometryRequest(maxW+2*padX+2*bd, h+2*padY+2*bd)
	m.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander.
func (m *Message) widgetCommand(sub string, args []string) (string, error) {
	return "", fmt.Errorf("bad option %q: must be configure", sub)
}

// Redraw implements tk.Widget.
func (m *Message) Redraw() {
	if m.win.Destroyed {
		return
	}
	m.clear(m.bg)
	bd := m.cv.GetInt("-borderwidth", 2)
	padX := m.cv.GetInt("-padx", 4)
	padY := m.cv.GetInt("-pady", 2)
	m.draw3DBorder(0, 0, m.win.Width, m.win.Height, bd, m.bg, m.cv.Get("-relief"))
	gc := m.app.GC(m.fg, m.bg, 1, m.fontID())
	justify := m.cv.Get("-justify")
	innerW := m.win.Width - 2*bd - 2*padX
	y := bd + padY + m.font.Ascent
	for _, line := range m.lines {
		x := bd + padX
		switch justify {
		case "center":
			x += (innerW - m.font.TextWidth(line)) / 2
		case "right":
			x += innerW - m.font.TextWidth(line)
		}
		m.app.Disp.DrawString(m.win.XID, gc, x, y, line)
		y += m.font.LineHeight()
	}
}
