package widget

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xproto"
)

// Canvas implements the drawing surface the paper lists as planned work
// for wish (§5: "I plan to enhance wish with drawing commands for shapes
// and text; once this is done it will be possible to code a large class
// of interesting applications entirely in Tcl"). It is a structured
// graphics widget: items (lines, rectangles, ovals, polygons, text) are
// created and manipulated from Tcl, identified by integer ids and
// free-form tags, and individual items can have their own event bindings
// — which is exactly the hook the paper's hypertext sketch needs
// ("associating Tcl commands with pieces of text or graphics").
type Canvas struct {
	base
	items  []*canvasItem
	nextID int
	// itemBindings: tag or id → event spec → script.
	itemBindings map[string]map[string]string
	current      *canvasItem // item under the pointer
}

type canvasItem struct {
	id     int
	kind   string // "line", "rectangle", "oval", "polygon", "text"
	coords []int  // pairs
	fill   string
	width  int // line width
	text   string
	tags   []string
}

func canvasSpecs() []tk.OptionSpec {
	specs := standardSpecs("White")
	return append(specs,
		tk.OptionSpec{Name: "-width", DBName: "width", DBClass: "Width", Default: "200"},
		tk.OptionSpec{Name: "-height", DBName: "height", DBClass: "Height", Default: "150"},
	)
}

func registerCanvas(app *tk.App) {
	app.Interp.Register("canvas", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "canvas pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Canvas", canvasSpecs(), false)
		if err != nil {
			return "", err
		}
		c := &Canvas{base: *b, itemBindings: make(map[string]map[string]string)}
		c.win.Widget = c
		c.geomAndExposure()
		c.bindBehaviour()
		return c.install(c, args[2:])
	})
}

// hasTag reports whether the item matches a tag or id spec.
func (it *canvasItem) hasTag(spec string) bool {
	if spec == "all" {
		return true
	}
	if n, err := strconv.Atoi(spec); err == nil {
		return it.id == n
	}
	for _, t := range it.tags {
		if t == spec {
			return true
		}
	}
	return false
}

// bbox returns the item's bounding box.
func (it *canvasItem) bbox() (x0, y0, x1, y1 int) {
	if len(it.coords) < 2 {
		return 0, 0, 0, 0
	}
	x0, y0 = it.coords[0], it.coords[1]
	x1, y1 = x0, y0
	for i := 0; i+1 < len(it.coords); i += 2 {
		x0 = min(x0, it.coords[i])
		x1 = max(x1, it.coords[i])
		y0 = min(y0, it.coords[i+1])
		y1 = max(y1, it.coords[i+1])
	}
	return
}

// contains reports whether the point is on (or in) the item; text items
// use their rendered extent.
func (c *Canvas) contains(it *canvasItem, x, y int) bool {
	x0, y0, x1, y1 := it.bbox()
	switch it.kind {
	case "text":
		x1 = x0 + c.font.TextWidth(it.text)
		y1 = y0 + c.font.LineHeight()
	case "line":
		// Fatten thin lines for picking.
		pad := max(it.width, 3)
		x0, y0, x1, y1 = x0-pad, y0-pad, x1+pad, y1+pad
	}
	return x >= x0 && y >= y0 && x <= x1 && y <= y1
}

// itemAt returns the topmost item containing (x, y), or nil.
func (c *Canvas) itemAt(x, y int) *canvasItem {
	for i := len(c.items) - 1; i >= 0; i-- {
		if c.contains(c.items[i], x, y) {
			return c.items[i]
		}
	}
	return nil
}

// bindBehaviour delivers pointer events to per-item bindings.
func (c *Canvas) bindBehaviour() {
	mask := xproto.ButtonPressMask | xproto.ButtonReleaseMask |
		xproto.PointerMotionMask | xproto.LeaveWindowMask
	c.win.AddEventHandler(mask, func(ev *xproto.Event) {
		switch int(ev.Type) {
		case xproto.MotionNotify:
			it := c.itemAt(int(ev.X), int(ev.Y))
			if it != c.current {
				if c.current != nil {
					c.fireItemBinding(c.current, "<Leave>", ev)
				}
				c.current = it
				if it != nil {
					c.fireItemBinding(it, "<Enter>", ev)
				}
			}
		case xproto.LeaveNotify:
			if c.current != nil {
				c.fireItemBinding(c.current, "<Leave>", ev)
				c.current = nil
			}
		case xproto.ButtonPress:
			if it := c.itemAt(int(ev.X), int(ev.Y)); it != nil {
				c.fireItemBinding(it, fmt.Sprintf("<Button-%d>", ev.Detail), ev)
			}
		case xproto.ButtonRelease:
			if it := c.itemAt(int(ev.X), int(ev.Y)); it != nil {
				c.fireItemBinding(it, fmt.Sprintf("<ButtonRelease-%d>", ev.Detail), ev)
			}
		}
	})
}

// fireItemBinding runs the script bound to the event for any tag the item
// carries (or its id), with %x/%y substitution.
func (c *Canvas) fireItemBinding(it *canvasItem, spec string, ev *xproto.Event) {
	specs := append([]string{strconv.Itoa(it.id)}, it.tags...)
	for _, tag := range specs {
		if script, ok := c.itemBindings[tag][spec]; ok {
			script = strings.ReplaceAll(script, "%x", strconv.Itoa(int(ev.X)))
			script = strings.ReplaceAll(script, "%y", strconv.Itoa(int(ev.Y)))
			c.eval(fmt.Sprintf("canvas binding %s on %s", spec, c.win.Path), script)
			return
		}
	}
}

// parseCoords reads an even number of integer coordinates.
func parseCoords(args []string) ([]int, error) {
	if len(args) == 0 || len(args)%2 != 0 {
		return nil, fmt.Errorf("canvas coordinates must come in x y pairs")
	}
	out := make([]int, len(args))
	for i, a := range args {
		n, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q", a)
		}
		out[i] = n
	}
	return out, nil
}

// recompute implements subcommander.
func (c *Canvas) recompute() error {
	if err := c.resolve(); err != nil {
		return err
	}
	c.win.GeometryRequest(c.cv.GetInt("-width", 200), c.cv.GetInt("-height", 150))
	c.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander.
func (c *Canvas) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "create":
		return c.cmdCreate(args)
	case "delete":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s delete tagOrId"`, c.win.Path)
		}
		kept := c.items[:0]
		for _, it := range c.items {
			if !it.hasTag(args[0]) {
				kept = append(kept, it)
			} else if c.current == it {
				c.current = nil
			}
		}
		c.items = kept
		c.win.ScheduleRedraw()
		return "", nil
	case "move":
		if len(args) != 3 {
			return "", fmt.Errorf(`wrong # args: should be "%s move tagOrId dx dy"`, c.win.Path)
		}
		dx, err1 := strconv.Atoi(args[1])
		dy, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("expected integer offsets")
		}
		for _, it := range c.items {
			if it.hasTag(args[0]) {
				for i := 0; i+1 < len(it.coords); i += 2 {
					it.coords[i] += dx
					it.coords[i+1] += dy
				}
			}
		}
		c.win.ScheduleRedraw()
		return "", nil
	case "coords":
		if len(args) < 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s coords tagOrId ?x y ...?"`, c.win.Path)
		}
		for _, it := range c.items {
			if it.hasTag(args[0]) {
				if len(args) > 1 {
					coords, err := parseCoords(args[1:])
					if err != nil {
						return "", err
					}
					it.coords = coords
					c.win.ScheduleRedraw()
					return "", nil
				}
				out := make([]string, len(it.coords))
				for i, v := range it.coords {
					out[i] = strconv.Itoa(v)
				}
				return strings.Join(out, " "), nil
			}
		}
		return "", nil
	case "itemconfigure":
		if len(args) < 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s itemconfigure tagOrId ?option value ...?"`, c.win.Path)
		}
		opts := args[1:]
		if len(opts)%2 != 0 {
			return "", fmt.Errorf("value for %q missing", opts[len(opts)-1])
		}
		for _, it := range c.items {
			if !it.hasTag(args[0]) {
				continue
			}
			for i := 0; i < len(opts); i += 2 {
				if err := c.applyItemOption(it, opts[i], opts[i+1]); err != nil {
					return "", err
				}
			}
		}
		c.win.ScheduleRedraw()
		return "", nil
	case "bind":
		if len(args) < 2 || len(args) > 3 {
			return "", fmt.Errorf(`wrong # args: should be "%s bind tagOrId event ?script?"`, c.win.Path)
		}
		tag, event := args[0], args[1]
		if len(args) == 2 {
			return c.itemBindings[tag][event], nil
		}
		if c.itemBindings[tag] == nil {
			c.itemBindings[tag] = make(map[string]string)
		}
		if args[2] == "" {
			delete(c.itemBindings[tag], event)
		} else {
			c.itemBindings[tag][event] = args[2]
		}
		return "", nil
	case "find":
		if len(args) >= 1 && args[0] == "closest" {
			if len(args) != 3 {
				return "", fmt.Errorf(`wrong # args: should be "%s find closest x y"`, c.win.Path)
			}
			x, err1 := strconv.Atoi(args[1])
			y, err2 := strconv.Atoi(args[2])
			if err1 != nil || err2 != nil {
				return "", fmt.Errorf("expected integer coordinates")
			}
			best := -1
			bestDist := 1 << 30
			for _, it := range c.items {
				x0, y0, x1, y1 := it.bbox()
				cx, cy := (x0+x1)/2, (y0+y1)/2
				d := (cx-x)*(cx-x) + (cy-y)*(cy-y)
				if d < bestDist {
					bestDist = d
					best = it.id
				}
			}
			if best < 0 {
				return "", nil
			}
			return strconv.Itoa(best), nil
		}
		if len(args) >= 1 && args[0] == "withtag" && len(args) == 2 {
			var ids []int
			for _, it := range c.items {
				if it.hasTag(args[1]) {
					ids = append(ids, it.id)
				}
			}
			sort.Ints(ids)
			out := make([]string, len(ids))
			for i, id := range ids {
				out[i] = strconv.Itoa(id)
			}
			return strings.Join(out, " "), nil
		}
		return "", fmt.Errorf(`bad find option: should be "closest x y" or "withtag tag"`)
	case "gettags":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s gettags tagOrId"`, c.win.Path)
		}
		for _, it := range c.items {
			if it.hasTag(args[0]) {
				return tcl.FormatList(it.tags), nil
			}
		}
		return "", nil
	case "raise":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s raise tagOrId"`, c.win.Path)
		}
		var lifted, rest []*canvasItem
		for _, it := range c.items {
			if it.hasTag(args[0]) {
				lifted = append(lifted, it)
			} else {
				rest = append(rest, it)
			}
		}
		c.items = append(rest, lifted...)
		c.win.ScheduleRedraw()
		return "", nil
	}
	return "", fmt.Errorf("bad option %q for canvas", sub)
}

// cmdCreate handles "create type x y ?x y ...? ?-option value ...?".
func (c *Canvas) cmdCreate(args []string) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf(`wrong # args: should be "%s create type coords ?options?"`, c.win.Path)
	}
	kind := args[0]
	switch kind {
	case "line", "rectangle", "oval", "polygon", "text":
	default:
		return "", fmt.Errorf("unknown canvas item type %q", kind)
	}
	// Coordinates run until the first -option.
	i := 1
	for i < len(args) && !strings.HasPrefix(args[i], "-") {
		i++
	}
	coords, err := parseCoords(args[1:i])
	if err != nil {
		return "", err
	}
	switch kind {
	case "rectangle", "oval":
		if len(coords) != 4 {
			return "", fmt.Errorf("%s items need exactly 4 coordinates", kind)
		}
	case "text":
		if len(coords) != 2 {
			return "", fmt.Errorf("text items need exactly 2 coordinates")
		}
	case "polygon":
		if len(coords) < 6 {
			return "", fmt.Errorf("polygons need at least 3 points")
		}
	}
	c.nextID++
	it := &canvasItem{id: c.nextID, kind: kind, coords: coords, fill: "black", width: 1}
	opts := args[i:]
	if len(opts)%2 != 0 {
		return "", fmt.Errorf("value for %q missing", opts[len(opts)-1])
	}
	for j := 0; j < len(opts); j += 2 {
		if err := c.applyItemOption(it, opts[j], opts[j+1]); err != nil {
			return "", err
		}
	}
	c.items = append(c.items, it)
	c.win.ScheduleRedraw()
	return strconv.Itoa(it.id), nil
}

func (c *Canvas) applyItemOption(it *canvasItem, name, value string) error {
	switch name {
	case "-fill":
		if _, err := c.app.Color(value); err != nil {
			return err
		}
		it.fill = value
	case "-width":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 {
			return fmt.Errorf("bad width %q", value)
		}
		it.width = n
	case "-text":
		it.text = value
	case "-tags":
		tags, err := tcl.ParseList(value)
		if err != nil {
			return err
		}
		it.tags = tags
	default:
		return fmt.Errorf("unknown item option %q", name)
	}
	return nil
}

// Redraw implements tk.Widget.
func (c *Canvas) Redraw() {
	if c.win.Destroyed {
		return
	}
	c.clear(c.bg)
	bd := c.cv.GetInt("-borderwidth", 2)
	d := c.app.Disp
	for _, it := range c.items {
		px, err := c.app.Color(it.fill)
		if err != nil {
			px = 0
		}
		gc := c.app.GC(px, c.bg, it.width, c.fontID())
		switch it.kind {
		case "line":
			pts := make([]xproto.Point, 0, len(it.coords)/2)
			for i := 0; i+1 < len(it.coords); i += 2 {
				pts = append(pts, xproto.Point{X: int16(it.coords[i]), Y: int16(it.coords[i+1])})
			}
			d.DrawLines(c.win.XID, gc, pts)
		case "rectangle":
			x0, y0, x1, y1 := it.bbox()
			d.FillRectangle(c.win.XID, gc, x0, y0, x1-x0, y1-y0)
		case "oval":
			// Approximated by a filled polygon around the ellipse.
			x0, y0, x1, y1 := it.bbox()
			cx, cy := (x0+x1)/2, (y0+y1)/2
			rx, ry := (x1-x0)/2, (y1-y0)/2
			pts := make([]xproto.Point, 0, 24)
			for k := 0; k < 24; k++ {
				pts = append(pts, xproto.Point{
					X: int16(cx + int(float64(rx)*cosTable[k])),
					Y: int16(cy + int(float64(ry)*sinTable[k])),
				})
			}
			d.FillPolygon(c.win.XID, gc, pts)
		case "polygon":
			pts := make([]xproto.Point, 0, len(it.coords)/2)
			for i := 0; i+1 < len(it.coords); i += 2 {
				pts = append(pts, xproto.Point{X: int16(it.coords[i]), Y: int16(it.coords[i+1])})
			}
			d.FillPolygon(c.win.XID, gc, pts)
		case "text":
			d.DrawString(c.win.XID, gc, it.coords[0], it.coords[1]+c.font.Ascent, it.text)
		}
	}
	c.draw3DBorder(0, 0, c.win.Width, c.win.Height, bd, c.bg, c.cv.Get("-relief"))
}

// cosTable/sinTable hold 24 points around the unit circle (avoiding a
// math import for one approximation).
var cosTable, sinTable = func() ([24]float64, [24]float64) {
	var ct, st [24]float64
	// Values computed once via the Taylor-free identity: rotate a unit
	// vector by 15° steps.
	const c15, s15 = 0.9659258262890683, 0.25881904510252074
	x, y := 1.0, 0.0
	for i := 0; i < 24; i++ {
		ct[i], st[i] = x, y
		x, y = x*c15-y*s15, x*s15+y*c15
	}
	return ct, st
}()
