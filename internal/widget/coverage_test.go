package widget_test

import (
	"strings"
	"testing"
)

// TestLabelBitmap renders a built-in bitmap (§3.3's textual bitmap
// names).
func TestLabelBitmap(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`label .l -bitmap gray50 -foreground black -background white`)
	app.MustEval(`pack append . .l {top}`)
	app.Update()
	w, _ := app.NameToWindow(".l")
	// gray50 is 8x8 plus padding.
	if w.ReqWidth < 8 || w.ReqHeight < 8 {
		t.Fatalf("bitmap label request %dx%d", w.ReqWidth, w.ReqHeight)
	}
	shot, _ := app.Disp.Screenshot(w.XID)
	black := 0
	for i := 0; i+2 < len(shot.Pixels); i += 3 {
		if shot.Pixels[i] == 0 && shot.Pixels[i+1] == 0 && shot.Pixels[i+2] == 0 {
			black++
		}
	}
	// A 50% stipple of an 8x8 area: 32 pixels.
	if black < 20 {
		t.Fatalf("bitmap rendered %d black pixels", black)
	}
	// The star bitmap and gray25 also resolve.
	app.MustEval(`label .s -bitmap star`)
	app.MustEval(`label .q -bitmap gray25`)
	// Unknown bitmaps fail.
	if _, err := app.Eval(`label .bad -bitmap nosuchbitmap`); err == nil {
		t.Fatal("unknown bitmap should fail")
	}
}

func TestCursorOption(t *testing.T) {
	app, _ := newApp(t)
	// The paper's §3.3 example: a cursor named by text.
	app.MustEval(`button .b -text X -cursor coffee_mug`)
	app.Update()
	// Cached on second use: no error and no growth surprises.
	app.MustEval(`button .b2 -text Y -cursor coffee_mug`)
	_, _, _, cursors := app.CacheStats()
	if cursors != 1 {
		t.Fatalf("cursor cache has %d entries, want 1 (shared)", cursors)
	}
}

func TestRaiseLowerCommands(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`frame .a -width 50 -height 50`)
	app.MustEval(`frame .b -width 50 -height 50`)
	app.MustEval(`pack append . .a {top} .b {top}`)
	app.Update()
	app.MustEval(`raise .a`)
	app.MustEval(`lower .a`)
	if _, err := app.Eval(`raise .nosuch`); err == nil {
		t.Fatal("raise of missing window should fail")
	}
}

func TestEntrySelectRange(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`entry .e`)
	app.MustEval(`pack append . .e {top}`)
	app.MustEval(`.e insert 0 "hello world"`)
	app.MustEval(`.e select range 0 5`)
	app.Update()
	// The entry's selection is the X selection now.
	if got := app.MustEval(`selection get`); got != "hello" {
		t.Fatalf("entry selection = %q", got)
	}
	if got := app.MustEval(`.e index sel.first`); got != "0" {
		t.Fatalf("sel.first = %q", got)
	}
	if got := app.MustEval(`.e index sel.last`); got != "5" {
		t.Fatalf("sel.last = %q", got)
	}
	app.MustEval(`.e select clear`)
	if _, err := app.Eval(`.e index sel.first`); err == nil {
		t.Fatal("sel.first without selection should fail")
	}
}

func TestFrameMessageRejectSubcommands(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`frame .f`)
	app.MustEval(`message .m -text hi`)
	if _, err := app.Eval(`.f flash`); err == nil {
		t.Fatal("frame subcommand should fail")
	}
	if _, err := app.Eval(`.m invoke`); err == nil {
		t.Fatal("message subcommand should fail")
	}
}

func TestMenubuttonPostUnpostCommands(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`menubutton .mb -text File -menu .m`)
	app.MustEval(`menu .m`)
	app.MustEval(`.m add command -label One`)
	app.MustEval(`pack append . .mb {top}`)
	app.Update()
	app.MustEval(`.mb post`)
	app.Update()
	m, _ := app.NameToWindow(".m")
	if !m.Mapped {
		t.Fatal("menu not posted")
	}
	app.MustEval(`.mb unpost`)
	app.Update()
	if m.Mapped {
		t.Fatal("menu not unposted")
	}
	if _, err := app.Eval(`.mb bogus`); err == nil {
		t.Fatal("bad menubutton subcommand should fail")
	}
}

func TestScrollbarGetAndErrors(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`scrollbar .s`)
	if got := app.MustEval(`.s get`); got != "1 1 0 0" {
		t.Fatalf("initial get = %q", got)
	}
	if _, err := app.Eval(`.s set 1 2 3`); err == nil {
		t.Fatal("wrong arity set should fail")
	}
	if _, err := app.Eval(`.s set a b c d`); err == nil {
		t.Fatal("non-integer set should fail")
	}
	if _, err := app.Eval(`.s scrollme`); err == nil {
		t.Fatal("bad subcommand should fail")
	}
	// Horizontal orientation geometry.
	app.MustEval(`scrollbar .h -orient horizontal -length 150 -width 12`)
	app.MustEval(`pack append . .h {top}`)
	app.Update()
	h, _ := app.NameToWindow(".h")
	if h.ReqWidth != 150 || h.ReqHeight != 12 {
		t.Fatalf("horizontal scrollbar req %dx%d", h.ReqWidth, h.ReqHeight)
	}
}

func TestListboxErrors(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`listbox .l`)
	if _, err := app.Eval(`.l get 0`); err == nil {
		t.Fatal("get from empty listbox should fail")
	}
	if _, err := app.Eval(`.l insert notanindex x`); err == nil {
		t.Fatal("bad index should fail")
	}
	if _, err := app.Eval(`.l view`); err == nil {
		t.Fatal("view without index should fail")
	}
	app.MustEval(`.l insert end only`)
	if got := app.MustEval(`.l nearest 5`); got != "0" {
		t.Fatalf("nearest = %q", got)
	}
	if got := app.MustEval(`.l curselection`); got != "" {
		t.Fatalf("curselection with no selection = %q", got)
	}
}

func TestConfigureRelief(t *testing.T) {
	app, _ := newApp(t)
	for _, relief := range []string{"flat", "raised", "sunken", "groove", "ridge"} {
		app.MustEval(`frame .f` + relief + ` -relief ` + relief + ` -width 30 -height 30 -borderwidth 4`)
		app.MustEval(`pack append . .f` + relief + ` {top}`)
	}
	app.Update() // renders every relief style without error
	shot, err := app.Disp.Screenshot(app.Main.XID)
	if err != nil || len(shot.Pixels) == 0 {
		t.Fatalf("screenshot: %v", err)
	}
}

func TestWinfoManagerAndGeometry(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`frame .f -width 40 -height 30`)
	app.MustEval(`pack append . .f {top}`)
	app.Update()
	if got := app.MustEval(`winfo manager .f`); got != "pack" {
		t.Fatalf("manager = %q", got)
	}
	if got := app.MustEval(`winfo geometry .f`); !strings.HasPrefix(got, "40x30") {
		t.Fatalf("geometry = %q", got)
	}
}
