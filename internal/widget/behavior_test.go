package widget_test

import (
	"strings"
	"testing"

	"repro/internal/xproto"
)

// TestScrollbarDrag drags the slider and checks the command stream it
// generates.
func TestScrollbarDrag(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`set seen {}`)
	app.MustEval(`proc view {n} {global seen; lappend seen $n}`)
	app.MustEval(`scrollbar .s -command view -length 200`)
	app.MustEval(`pack append . .s {top}`)
	app.MustEval(`.s set 100 10 0 9`)
	app.Update()

	sb, _ := app.NameToWindow(".s")
	rx, ry := sb.RootCoords()
	cx := rx + sb.Width/2
	// Press inside the slider (top area just below the arrow) and drag
	// down.
	arrow := sb.Width
	app.Disp.WarpPointer(cx, ry+arrow+5)
	app.Disp.FakeButton(1, true)
	app.Update()
	app.Disp.WarpPointer(cx, ry+arrow+60)
	app.Update()
	app.Disp.WarpPointer(cx, ry+arrow+120)
	app.Update()
	app.Disp.FakeButton(1, false)
	app.Update()

	seen := app.MustEval(`set seen`)
	if seen == "" {
		t.Fatal("drag generated no view commands")
	}
	// Units increase as we drag down.
	parts := strings.Fields(seen)
	first, last := parts[0], parts[len(parts)-1]
	if first >= last && len(parts) > 1 {
		t.Fatalf("drag sequence not increasing: %v", parts)
	}
}

// TestScrollbarPageClick clicks in the trough below the slider: page
// down by windowUnits-1.
func TestScrollbarPageClick(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`set got -1`)
	app.MustEval(`proc view {n} {global got; set got $n}`)
	app.MustEval(`scrollbar .s -command view -length 200`)
	app.MustEval(`pack append . .s {top}`)
	app.MustEval(`.s set 100 10 0 9`)
	app.Update()
	sb, _ := app.NameToWindow(".s")
	rx, ry := sb.RootCoords()
	click(app, rx+sb.Width/2, ry+sb.Height-sb.Width-10) // trough bottom
	if got := app.MustEval(`set got`); got != "9" {
		t.Fatalf("page down = %q, want 9 (first + window-1)", got)
	}
}

// TestRedrawCollapsing: many damage notifications collapse into one
// redraw per idle pass (§3.2's when-idle handlers exist for this).
func TestRedrawCollapsing(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`button .b -text X`)
	app.MustEval(`pack append . .b {top}`)
	app.Update()
	w, _ := app.NameToWindow(".b")
	// The client-side registry counts requests as they are sent — no
	// server round trip needed to measure, so the measurement itself
	// adds no traffic.
	requests := app.Metrics().Counter("requests")
	before := requests.Value()
	// Schedule many redraws before letting idle run.
	for i := 0; i < 50; i++ {
		w.ScheduleRedraw()
	}
	app.UpdateIdleTasks()
	// One redraw issues a handful of requests; 50 would issue hundreds.
	cost := requests.Value() - before
	if cost > 40 {
		t.Fatalf("50 scheduled redraws issued %d requests: not collapsed", cost)
	}
}

// TestVerticalScale covers the -orient vertical path.
func TestVerticalScale(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`scale .s -orient vertical -from 0 -to 50 -length 120`)
	app.MustEval(`pack append . .s {top}`)
	app.Update()
	s, _ := app.NameToWindow(".s")
	if s.Height != 120 || s.Width >= s.Height {
		t.Fatalf("vertical scale geometry %dx%d", s.Width, s.Height)
	}
	rx, ry := s.RootCoords()
	click(app, rx+8, ry+s.Height-8) // near the bottom: high value
	if got := app.MustEval(`.s get`); got == "0" {
		t.Fatal("vertical click did not move value")
	}
}

// TestMessageJustify exercises center/right justification and explicit
// newlines.
func TestMessageJustify(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`message .m -width 120 -justify center -text "one\ntwo words here\nthree"`)
	app.MustEval(`pack append . .m {top}`)
	app.Update()
	m, _ := app.NameToWindow(".m")
	if m.ReqHeight < 3*10 {
		t.Fatalf("3 lines should need height >= 30, got %d", m.ReqHeight)
	}
	app.MustEval(`.m configure -justify right`)
	app.Update()
}

// TestMenuDelete covers entry deletion and invalid indices.
func TestMenuDelete(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`menu .m`)
	app.MustEval(`.m add command -label A`)
	app.MustEval(`.m add command -label B`)
	app.MustEval(`.m delete 0`)
	if got := app.MustEval(`.m entrylabel 0`); got != "B" {
		t.Fatalf("after delete: %q", got)
	}
	if _, err := app.Eval(`.m delete 5`); err == nil {
		t.Fatal("bad index should fail")
	}
	if _, err := app.Eval(`.m add toggle -label X`); err == nil {
		t.Fatal("bad entry type should fail")
	}
}

// TestWidgetOptionAbbreviationsViaTcl mirrors Tk's switch abbreviation.
func TestWidgetCreationErrors(t *testing.T) {
	app, _ := newApp(t)
	cases := []string{
		`button`,                      // no path
		`button badpath`,              // not starting with .
		`button .x -text`,             // missing value
		`button .x -nosuchopt v`,      // unknown option
		`button .deep.nested -text x`, // parent doesn't exist
	}
	for _, c := range cases {
		if _, err := app.Eval(c); err == nil {
			t.Errorf("%q should fail", c)
		}
	}
	// Failed creation must not leave a half-made window or command.
	if app.WindowExists(".x") {
		t.Fatal("failed widget creation left a window behind")
	}
	if app.Interp.HasCommand(".x") {
		t.Fatal("failed widget creation left a command behind")
	}
	// The name is reusable after the failure.
	app.MustEval(`button .x -text fine`)
}

// TestEnterLeaveActiveColors: buttons track the pointer for highlighting.
func TestEnterLeaveActiveState(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`button .b -text Hover -activebackground red`)
	app.MustEval(`pack append . .b {top}`)
	app.Update()
	w, _ := app.NameToWindow(".b")
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+5, ry+5)
	app.Update()
	// Check the active background actually rendered.
	shot, _ := app.Disp.Screenshot(w.XID)
	red := 0
	for i := 0; i+2 < len(shot.Pixels); i += 3 {
		if shot.Pixels[i] == 0xff && shot.Pixels[i+1] == 0 && shot.Pixels[i+2] == 0 {
			red++
		}
	}
	if red < 50 {
		t.Fatalf("active background not shown (%d red pixels)", red)
	}
	app.Disp.WarpPointer(rx+500, ry+500)
	app.Update()
	shot, _ = app.Disp.Screenshot(w.XID)
	red = 0
	for i := 0; i+2 < len(shot.Pixels); i += 3 {
		if shot.Pixels[i] == 0xff && shot.Pixels[i+1] == 0 && shot.Pixels[i+2] == 0 {
			red++
		}
	}
	if red > 50 {
		t.Fatal("active background stuck after leave")
	}
}

// TestKeysymPercentSubstitution: %K and %A in bindings.
func TestKeysymPercentSubstitution(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`entry .e`)
	app.MustEval(`pack append . .e {top}`)
	app.MustEval(`set keys {}`)
	app.MustEval(`bind .e <KeyPress> {lappend keys %K=%A}`)
	app.Update()
	w, _ := app.NameToWindow(".e")
	rx, ry := w.RootCoords()
	click(app, rx+5, ry+5)
	app.Disp.FakeKey('g', true)
	app.Disp.FakeKey('g', false)
	app.Disp.FakeKey(xproto.KsEscape, true)
	app.Disp.FakeKey(xproto.KsEscape, false)
	app.Update()
	got := app.MustEval(`set keys`)
	if !strings.Contains(got, "g=g") || !strings.Contains(got, "Escape=") {
		t.Fatalf("keys = %q", got)
	}
}
