// Package widget implements Tk's Motif-compatible widget set (§4 and §7
// of the paper): frames, labels, buttons, check buttons, radio buttons,
// messages, listboxes, scrollbars, scales, entries and menus. Each widget
// is display + behaviour code in Go built on the internal/tk intrinsics,
// plus two kinds of Tcl commands: a class creation command ("button
// .hello -bg Red ...") and a per-widget command named after the window
// (".hello flash", ".hello configure -bg PalePink1").
package widget

import (
	"fmt"
	"strings"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xclient"
	"repro/internal/xproto"
)

// Default Motif-era colors.
const (
	DefBackground       = "Bisque1"
	DefActiveBackground = "Bisque2"
	DefForeground       = "Black"
	DefSelectBackground = "LightSteelBlue"
	DefFont             = "6x13"
)

// CommandNames returns, sorted, the widget-creation command names that
// Register installs. It needs no application and exists so tools such
// as cmd/tkcheck can introspect the command set statically;
// TestCommandNamesMatchRegister keeps it in sync with Register.
func CommandNames() []string {
	return []string{
		"button", "canvas", "checkbutton", "entry", "frame", "label",
		"listbox", "menu", "menubutton", "message", "radiobutton",
		"scale", "scrollbar", "text", "toplevel",
	}
}

// Register installs every widget-creation command in an application's
// interpreter. core.NewApp calls this; tests may call it directly.
func Register(app *tk.App) {
	registerFrame(app)
	registerButtons(app)
	registerMessage(app)
	registerListbox(app)
	registerScrollbar(app)
	registerScale(app)
	registerEntry(app)
	registerMenu(app)
	registerCanvas(app)
	registerText(app)
}

// base carries the state shared by all widget classes.
type base struct {
	app *tk.App
	win *tk.Window
	cv  *tk.ConfigValues

	// Resolved display resources.
	font *xclient.Font
	bg   uint32
	fg   uint32
}

// subcommander is the widget-specific part of a widget command.
type subcommander interface {
	// widgetCommand executes one subcommand (args excludes the widget
	// path and the subcommand word itself).
	widgetCommand(sub string, args []string) (string, error)
	// recompute re-reads configuration values, updates the requested
	// geometry and schedules a redraw.
	recompute() error
}

// install finishes widget creation: applies the configuration arguments,
// prefetches the resulting display resources as one pipelined flight,
// registers the widget command, and hooks destruction.
func (b *base) install(w subcommander, args []string) (string, error) {
	if err := b.cv.ApplyArgs(args); err != nil {
		b.app.DestroyWindow(b.win)
		return "", err
	}
	b.prefetch()
	if err := w.recompute(); err != nil {
		b.app.DestroyWindow(b.win)
		return "", err
	}
	path := b.win.Path
	b.app.Interp.Register(path, func(in *tcl.Interp, argv []string) (string, error) {
		if b.win.Destroyed {
			return "", fmt.Errorf("window %q has been destroyed", path)
		}
		if len(argv) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s option ?arg ...?"`, path)
		}
		sub := argv[1]
		if sub == "configure" {
			return tk.HandleConfigure(b.cv, argv[2:], func() error {
				b.prefetch()
				return w.recompute()
			})
		}
		return w.widgetCommand(sub, argv[2:])
	})
	return path, nil
}

// prefetch issues the widget's cache-missing color/font/cursor
// allocations as one pipelined batch (§3.3 meets the cookie model), so
// the recompute path that follows finds them all cached after a single
// round trip rather than one per resource.
func (b *base) prefetch() {
	colors, fonts, cursors := b.cv.ResourceNames()
	b.app.PrefetchResources(colors, fonts, cursors)
}

// Destroyed implements part of tk.Widget for all classes.
func (b *base) Destroyed() {
	b.app.Interp.Unregister(b.win.Path)
}

// resolve caches the font and colors from the current configuration.
func (b *base) resolve() error {
	font, err := b.app.FontByName(b.cv.Get("-font"))
	if err != nil {
		return err
	}
	b.font = font
	if b.bg, err = b.app.Color(b.cv.Get("-background")); err != nil {
		return err
	}
	if b.fg, err = b.app.Color(b.cv.Get("-foreground")); err != nil {
		return err
	}
	b.win.SetBackground(b.bg)
	if c := b.cv.Get("-cursor"); c != "" {
		cursor, err := b.app.Cursor(c)
		if err == nil {
			b.app.Disp.SetWindowCursor(b.win.XID, cursor)
		}
	}
	return nil
}

// shade lightens (factor > 1) or darkens (factor < 1) a pixel for 3-D
// borders.
func shade(pixel uint32, factor float64) uint32 {
	adj := func(c uint32) uint32 {
		v := float64(c) * factor
		if v > 255 {
			v = 255
		}
		return uint32(v)
	}
	r := adj(pixel >> 16 & 0xff)
	g := adj(pixel >> 8 & 0xff)
	bl := adj(pixel & 0xff)
	return r<<16 | g<<8 | bl
}

// draw3DBorder renders a Motif-style relief border of width bw around
// the rectangle (x, y, w, h) in the widget's window.
func (b *base) draw3DBorder(x, y, w, h, bw int, bg uint32, relief string) {
	if bw <= 0 || relief == "flat" {
		return
	}
	d := b.app.Disp
	light := shade(bg, 1.4)
	dark := shade(bg, 0.6)
	top, bottom := light, dark
	switch relief {
	case "sunken":
		top, bottom = dark, light
	case "groove":
		top, bottom = dark, light
	case "ridge":
		top, bottom = light, dark
	}
	gcTop := b.app.GC(top, bg, 1, b.fontID())
	gcBottom := b.app.GC(bottom, bg, 1, b.fontID())
	half := bw
	if relief == "groove" || relief == "ridge" {
		half = bw / 2
		if half < 1 {
			half = 1
		}
	}
	for i := 0; i < half; i++ {
		// Top and left in the top shade.
		d.FillRectangle(b.win.XID, gcTop, x+i, y+i, w-2*i, 1)
		d.FillRectangle(b.win.XID, gcTop, x+i, y+i, 1, h-2*i)
		// Bottom and right in the bottom shade.
		d.FillRectangle(b.win.XID, gcBottom, x+i, y+h-1-i, w-2*i, 1)
		d.FillRectangle(b.win.XID, gcBottom, x+w-1-i, y+i, 1, h-2*i)
	}
	if relief == "groove" || relief == "ridge" {
		for i := half; i < bw; i++ {
			d.FillRectangle(b.win.XID, gcBottom, x+i, y+i, w-2*i, 1)
			d.FillRectangle(b.win.XID, gcBottom, x+i, y+i, 1, h-2*i)
			d.FillRectangle(b.win.XID, gcTop, x+i, y+h-1-i, w-2*i, 1)
			d.FillRectangle(b.win.XID, gcTop, x+w-1-i, y+i, 1, h-2*i)
		}
	}
}

func (b *base) fontID() xproto.ID {
	if b.font != nil {
		return b.font.ID
	}
	return 0
}

// clear fills the widget window with a background pixel.
func (b *base) clear(bg uint32) {
	gc := b.app.GC(bg, bg, 1, b.fontID())
	b.app.Disp.FillRectangle(b.win.XID, gc, 0, 0, b.win.Width, b.win.Height)
}

// drawCenteredText draws a line of text centered in the window.
func (b *base) drawCenteredText(text string, fg, bg uint32) {
	gc := b.app.GC(fg, bg, 1, b.fontID())
	tw := b.font.TextWidth(text)
	x := (b.win.Width - tw) / 2
	y := (b.win.Height+b.font.Ascent-b.font.Descent)/2 + b.font.Descent/2
	b.app.Disp.DrawString(b.win.XID, gc, x, y, text)
}

// eval runs a widget callback command, reporting failures as background
// errors (widget callbacks have no caller to return errors to).
func (b *base) eval(context, script string) {
	if strings.TrimSpace(script) == "" {
		return
	}
	if _, err := b.app.Interp.Eval(script); err != nil {
		b.app.BackgroundError(context, err)
	}
}

// standardSpecs returns the option specs shared by most widgets.
func standardSpecs(defBG string) []tk.OptionSpec {
	return []tk.OptionSpec{
		{Name: "-background", DBName: "background", DBClass: "Background", Default: defBG},
		{Name: "-bg", Synonym: "-background"},
		{Name: "-foreground", DBName: "foreground", DBClass: "Foreground", Default: DefForeground},
		{Name: "-fg", Synonym: "-foreground"},
		{Name: "-font", DBName: "font", DBClass: "Font", Default: DefFont},
		{Name: "-borderwidth", DBName: "borderWidth", DBClass: "BorderWidth", Default: "2"},
		{Name: "-bd", Synonym: "-borderwidth"},
		{Name: "-relief", DBName: "relief", DBClass: "Relief", Default: "flat"},
		{Name: "-cursor", DBName: "cursor", DBClass: "Cursor", Default: ""},
	}
}

// newBase creates the window for a widget and prepares its configuration
// storage, applying option-database values and defaults.
func newBase(app *tk.App, path, class string, specs []tk.OptionSpec, topLevel bool) (*base, error) {
	var win *tk.Window
	var err error
	if topLevel {
		win, err = app.CreateTopLevel(path, class)
	} else {
		win, err = app.CreateWindow(path, class)
	}
	if err != nil {
		return nil, err
	}
	b := &base{app: app, win: win, cv: tk.NewConfigValues(specs)}
	b.cv.ApplyDefaults(app, win)
	return b, nil
}

// geomAndExposure wires the standard redraw triggers: exposure and
// resize.
func (b *base) geomAndExposure() {
	b.win.AddEventHandler(xproto.ExposureMask, func(*xproto.Event) {
		b.win.ScheduleRedraw()
	})
}

// parseInt is a small helper for widget argument parsing, accepting
// "end" as -1.
func parseIndex(s string, end int) (int, error) {
	if s == "end" {
		return end, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return 0, fmt.Errorf("bad index %q", s)
	}
	return n, nil
}
