package widget

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xproto"
)

// Scrollbar implements the Scrollbar class with the classic (paper-era)
// protocol: the scrollbar is created with a -command prefix such as
// ".list view"; when the user manipulates it, the scrollbar appends a
// unit number and evaluates the result (".list view 40", §4). The
// associated widget keeps the scrollbar current by calling
// ".scroll set totalUnits windowUnits first last".
type Scrollbar struct {
	base

	total  int // total units in the associated widget
	window int // units visible at once
	first  int // first visible unit
	last   int // last visible unit

	dragging   bool
	dragOffset int
}

func scrollbarSpecs() []tk.OptionSpec {
	specs := standardSpecs(DefBackground)
	for i := range specs {
		if specs[i].Name == "-relief" {
			specs[i].Default = "sunken"
		}
	}
	return append(specs,
		tk.OptionSpec{Name: "-command", DBName: "command", DBClass: "Command", Default: ""},
		tk.OptionSpec{Name: "-orient", DBName: "orient", DBClass: "Orient", Default: "vertical"},
		tk.OptionSpec{Name: "-width", DBName: "width", DBClass: "Width", Default: "15"},
		tk.OptionSpec{Name: "-length", DBName: "length", DBClass: "Length", Default: "100"},
	)
}

func registerScrollbar(app *tk.App) {
	app.Interp.Register("scrollbar", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "scrollbar pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Scrollbar", scrollbarSpecs(), false)
		if err != nil {
			return "", err
		}
		sb := &Scrollbar{base: *b, total: 1, window: 1}
		sb.win.Widget = sb
		sb.geomAndExposure()
		sb.bindBehaviour()
		return sb.install(sb, args[2:])
	})
}

func (sb *Scrollbar) vertical() bool { return sb.cv.Get("-orient") != "horizontal" }

// geometry helpers: along is the scrolling axis length, across the other.
func (sb *Scrollbar) along() int {
	if sb.vertical() {
		return sb.win.Height
	}
	return sb.win.Width
}

// arrowSize is the size of each end arrow along the axis.
func (sb *Scrollbar) arrowSize() int {
	if sb.vertical() {
		return sb.win.Width
	}
	return sb.win.Height
}

// sliderSpan returns the slider's pixel range [start, end) along the
// axis.
func (sb *Scrollbar) sliderSpan() (int, int) {
	arrow := sb.arrowSize()
	trough := sb.along() - 2*arrow
	if trough < 1 {
		trough = 1
	}
	total := sb.total
	if total < 1 {
		total = 1
	}
	start := arrow + sb.first*trough/total
	span := sb.window * trough / total
	if span < 8 {
		span = 8
	}
	end := start + span
	if end > arrow+trough {
		end = arrow + trough
	}
	return start, end
}

// emit evaluates the -command prefix with unit appended (§4's "the
// scrollbar adds an additional number to it, producing a command like
// '.list view 40'").
func (sb *Scrollbar) emit(unit int) {
	if unit < 0 {
		unit = 0
	}
	cmd := sb.cv.Get("-command")
	if strings.TrimSpace(cmd) == "" {
		return
	}
	sb.eval("scrollbar command", cmd+" "+strconv.Itoa(unit))
}

// unitAt converts a pixel position along the axis to a unit number for
// slider dragging.
func (sb *Scrollbar) unitAt(pos int) int {
	arrow := sb.arrowSize()
	trough := sb.along() - 2*arrow
	if trough < 1 {
		trough = 1
	}
	return (pos - arrow) * sb.total / trough
}

func (sb *Scrollbar) bindBehaviour() {
	mask := xproto.ButtonPressMask | xproto.ButtonReleaseMask | xproto.ButtonMotionMask
	sb.win.AddEventHandler(mask, func(ev *xproto.Event) {
		pos := int(ev.Y)
		if !sb.vertical() {
			pos = int(ev.X)
		}
		switch int(ev.Type) {
		case xproto.ButtonPress:
			if ev.Detail != 1 {
				return
			}
			arrow := sb.arrowSize()
			start, end := sb.sliderSpan()
			switch {
			case pos < arrow:
				sb.emit(sb.first - 1) // up/left arrow: scroll one unit
			case pos >= sb.along()-arrow:
				sb.emit(sb.first + 1) // down/right arrow
			case pos < start:
				sb.emit(sb.first - (sb.window - 1)) // page up
			case pos >= end:
				sb.emit(sb.first + (sb.window - 1)) // page down
			default:
				sb.dragging = true
				sb.dragOffset = pos - start
			}
		case xproto.MotionNotify:
			if sb.dragging {
				sb.emit(sb.unitAt(pos - sb.dragOffset))
			}
		case xproto.ButtonRelease:
			if ev.Detail == 1 {
				sb.dragging = false
			}
		}
	})
}

// recompute implements subcommander.
func (sb *Scrollbar) recompute() error {
	if err := sb.resolve(); err != nil {
		return err
	}
	width := sb.cv.GetInt("-width", 15)
	length := sb.cv.GetInt("-length", 100)
	if sb.vertical() {
		sb.win.GeometryRequest(width, length)
	} else {
		sb.win.GeometryRequest(length, width)
	}
	sb.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander.
func (sb *Scrollbar) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "set":
		if len(args) != 4 {
			return "", fmt.Errorf(`wrong # args: should be "%s set totalUnits windowUnits firstUnit lastUnit"`, sb.win.Path)
		}
		vals := make([]int, 4)
		for i, a := range args {
			n, err := strconv.Atoi(a)
			if err != nil {
				return "", fmt.Errorf("expected integer but got %q", a)
			}
			vals[i] = n
		}
		sb.total, sb.window, sb.first, sb.last = vals[0], vals[1], vals[2], vals[3]
		sb.win.ScheduleRedraw()
		return "", nil
	case "get":
		return fmt.Sprintf("%d %d %d %d", sb.total, sb.window, sb.first, sb.last), nil
	}
	return "", fmt.Errorf("bad option %q: must be set, get, or configure", sub)
}

// Redraw implements tk.Widget.
func (sb *Scrollbar) Redraw() {
	if sb.win.Destroyed {
		return
	}
	sb.clear(sb.bg)
	bd := sb.cv.GetInt("-borderwidth", 2)
	sb.draw3DBorder(0, 0, sb.win.Width, sb.win.Height, bd, sb.bg, sb.cv.Get("-relief"))

	arrow := sb.arrowSize()
	fgGC := sb.app.GC(shade(sb.bg, 0.7), sb.bg, 1, sb.fontID())
	d := sb.app.Disp
	// Arrows as filled triangles.
	if sb.vertical() {
		w := sb.win.Width
		d.FillPolygon(sb.win.XID, fgGC, []xproto.Point{
			{X: int16(w / 2), Y: int16(bd)},
			{X: int16(w - bd), Y: int16(arrow - bd)},
			{X: int16(bd), Y: int16(arrow - bd)},
		})
		h := sb.win.Height
		d.FillPolygon(sb.win.XID, fgGC, []xproto.Point{
			{X: int16(w / 2), Y: int16(h - bd)},
			{X: int16(w - bd), Y: int16(h - arrow + bd)},
			{X: int16(bd), Y: int16(h - arrow + bd)},
		})
	} else {
		h := sb.win.Height
		d.FillPolygon(sb.win.XID, fgGC, []xproto.Point{
			{X: int16(bd), Y: int16(h / 2)},
			{X: int16(arrow - bd), Y: int16(bd)},
			{X: int16(arrow - bd), Y: int16(h - bd)},
		})
		w := sb.win.Width
		d.FillPolygon(sb.win.XID, fgGC, []xproto.Point{
			{X: int16(w - bd), Y: int16(h / 2)},
			{X: int16(w - arrow + bd), Y: int16(bd)},
			{X: int16(w - arrow + bd), Y: int16(h - bd)},
		})
	}
	// Slider.
	start, end := sb.sliderSpan()
	sliderGC := sb.app.GC(shade(sb.bg, 1.15), sb.bg, 1, sb.fontID())
	if sb.vertical() {
		d.FillRectangle(sb.win.XID, sliderGC, bd, start, sb.win.Width-2*bd, end-start)
		sb.draw3DBorder(bd, start, sb.win.Width-2*bd, end-start, 2, shade(sb.bg, 1.15), "raised")
	} else {
		d.FillRectangle(sb.win.XID, sliderGC, start, bd, end-start, sb.win.Height-2*bd)
		sb.draw3DBorder(start, bd, end-start, sb.win.Height-2*bd, 2, shade(sb.bg, 1.15), "raised")
	}
}
