package widget_test

import (
	"sort"
	"testing"

	"repro/internal/widget"
)

// TestCommandNamesMatchRegister keeps the static CommandNames table in
// sync with Register: every advertised widget class must be a live
// creation command in a full application.
func TestCommandNamesMatchRegister(t *testing.T) {
	app, _ := newApp(t)

	names := widget.CommandNames()
	if !sort.StringsAreSorted(names) {
		t.Error("CommandNames is not sorted")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("CommandNames lists %q twice", n)
		}
		seen[n] = true
		if !app.Interp.HasCommand(n) {
			t.Errorf("CommandNames lists %q but Register did not install it", n)
		}
	}
}
