package widget_test

import (
	"testing"

	"repro/internal/xproto"
)

func press(app interface {
	Update()
}, d interface {
	FakeKey(xproto.Keysym, bool)
}, ks xproto.Keysym) {
	d.FakeKey(ks, true)
	d.FakeKey(ks, false)
	app.Update()
}

// TestEntryCursorKeys drives every entry key binding.
func TestEntryCursorKeys(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`entry .e -width 20`)
	app.MustEval(`pack append . .e {top}`)
	app.Update()
	cx, cy := centerOf(t, app, ".e")
	click(app, cx, cy)
	app.MustEval(`.e insert 0 "abcd"`)
	app.MustEval(`.e icursor end`)

	d := app.Disp
	press(app, d, xproto.KsLeft)
	press(app, d, xproto.KsLeft)
	if got := app.MustEval(`.e index insert`); got != "2" {
		t.Fatalf("after two lefts: %s", got)
	}
	press(app, d, xproto.KsDelete) // deletes 'c'
	if got := app.MustEval(`.e get`); got != "abd" {
		t.Fatalf("after delete: %q", got)
	}
	press(app, d, xproto.KsHome)
	if got := app.MustEval(`.e index insert`); got != "0" {
		t.Fatalf("after home: %s", got)
	}
	press(app, d, xproto.KsRight)
	if got := app.MustEval(`.e index insert`); got != "1" {
		t.Fatalf("after right: %s", got)
	}
	press(app, d, xproto.KsEnd)
	if got := app.MustEval(`.e index insert`); got != "3" {
		t.Fatalf("after end: %s", got)
	}
	// Control combinations are left to user bindings: no insertion.
	d.FakeKey(xproto.KsControlL, true)
	press(app, d, 'x')
	d.FakeKey(xproto.KsControlL, false)
	app.Update()
	if got := app.MustEval(`.e get`); got != "abd" {
		t.Fatalf("control-x inserted: %q", got)
	}
}

// TestTextCursorKeys drives the text widget's arrows and line joining.
func TestTextCursorKeys(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`text .t -width 20 -height 6`)
	app.MustEval(`pack append . .t {top}`)
	app.MustEval(`.t insert end "first\nsecond longer\nthird"`)
	app.Update()
	w, _ := app.NameToWindow(".t")
	rx, ry := w.RootCoords()
	click(app, rx+5, ry+5) // line 1, col 0
	d := app.Disp

	press(app, d, xproto.KsDown)
	press(app, d, xproto.KsDown)
	if got := app.MustEval(`.t index insert`); got != "3.0" {
		t.Fatalf("after two downs: %s", got)
	}
	press(app, d, xproto.KsUp)
	if got := app.MustEval(`.t index insert`); got != "2.0" {
		t.Fatalf("after up: %s", got)
	}
	// End of line 2 via rights wraps to line 3 col 0 eventually.
	app.MustEval(`.t mark set insert 2.end`)
	press(app, d, xproto.KsRight)
	if got := app.MustEval(`.t index insert`); got != "3.0" {
		t.Fatalf("right at line end: %s", got)
	}
	press(app, d, xproto.KsLeft)
	if got := app.MustEval(`.t index insert`); got != "2.13" {
		t.Fatalf("left at line start: %s", got)
	}
	// Up clamps the column to the shorter line.
	app.MustEval(`.t mark set insert 2.10`)
	press(app, d, xproto.KsUp)
	if got := app.MustEval(`.t index insert`); got != "1.5" {
		t.Fatalf("up clamps: %s", got)
	}
}

// TestCanvasAllItemKindsRender exercises every item renderer.
func TestCanvasAllItemKindsRender(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`canvas .c -width 200 -height 160 -background white`)
	app.MustEval(`pack append . .c {top}`)
	app.MustEval(`.c create line 0 0 50 50 20 70 -fill red -width 2`)
	app.MustEval(`.c create rectangle 60 10 100 40 -fill blue`)
	app.MustEval(`.c create oval 110 10 170 50 -fill green`)
	app.MustEval(`.c create polygon 20 90 60 90 40 130 -fill purple`)
	app.MustEval(`.c create text 80 100 -text "words" -fill black`)
	app.Update()
	w, _ := app.NameToWindow(".c")
	shot, _ := app.Disp.Screenshot(w.XID)
	colors := map[uint32]int{}
	for i := 0; i+2 < len(shot.Pixels); i += 3 {
		px := uint32(shot.Pixels[i])<<16 | uint32(shot.Pixels[i+1])<<8 | uint32(shot.Pixels[i+2])
		colors[px]++
	}
	for name, px := range map[string]uint32{
		"red": 0xff0000, "blue": 0x0000ff, "green": 0x00ff00,
		"purple": 0xa020f0, "black": 0x000000,
	} {
		if colors[px] < 10 {
			t.Errorf("item color %s rendered %d pixels", name, colors[px])
		}
	}
}

// TestListboxSelectionLostToEntry: two widgets in one app trade the
// selection; the loser deselects.
func TestSelectionLostBetweenWidgets(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`listbox .l -geometry 10x3`)
	app.MustEval(`entry .e`)
	app.MustEval(`pack append . .l {top} .e {top}`)
	app.MustEval(`.l insert end item`)
	app.MustEval(`.l select from 0`)
	app.Update()
	if got := app.MustEval(`selection get`); got != "item" {
		t.Fatalf("listbox selection = %q", got)
	}
	// The entry claims it.
	app.MustEval(`.e insert 0 "entrytext"`)
	app.MustEval(`.e select range 0 5`)
	app.Update()
	if got := app.MustEval(`selection get`); got != "entry" {
		t.Fatalf("entry selection = %q", got)
	}
	// The listbox deselected when it lost the X selection.
	if got := app.MustEval(`.l curselection`); got != "" {
		t.Fatalf("listbox still selected: %q", got)
	}
}
