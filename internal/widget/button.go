package widget

import (
	"fmt"
	"time"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xproto"
)

// This file implements labels, buttons, check buttons and radio buttons —
// one file for all four, exactly as Table I of the paper notes ("in Tk a
// single file implements labels, buttons, check buttons, and radio
// buttons"; Motif needs three).

// Button kinds.
const (
	kindLabel = iota
	kindButton
	kindCheck
	kindRadio
)

// Button implements the Label, Button, Checkbutton and Radiobutton
// classes.
type Button struct {
	base
	kind int

	// Behaviour state.
	active  bool // pointer inside
	pressed bool // button 1 down inside
	on      bool // indicator state for check/radio

	indicatorSize int
}

func buttonSpecs(kind int) []tk.OptionSpec {
	specs := standardSpecs(DefBackground)
	specs = append(specs,
		tk.OptionSpec{Name: "-text", DBName: "text", DBClass: "Text", Default: ""},
		tk.OptionSpec{Name: "-bitmap", DBName: "bitmap", DBClass: "Bitmap", Default: ""},
		tk.OptionSpec{Name: "-padx", DBName: "padX", DBClass: "Pad", Default: "4"},
		tk.OptionSpec{Name: "-pady", DBName: "padY", DBClass: "Pad", Default: "2"},
		tk.OptionSpec{Name: "-anchor", DBName: "anchor", DBClass: "Anchor", Default: "center"},
		tk.OptionSpec{Name: "-width", DBName: "width", DBClass: "Width", Default: "0"},
		tk.OptionSpec{Name: "-height", DBName: "height", DBClass: "Height", Default: "0"},
	)
	if kind != kindLabel {
		specs = append(specs,
			tk.OptionSpec{Name: "-command", DBName: "command", DBClass: "Command", Default: ""},
			tk.OptionSpec{Name: "-activebackground", DBName: "activeBackground", DBClass: "Foreground", Default: DefActiveBackground},
			tk.OptionSpec{Name: "-activeforeground", DBName: "activeForeground", DBClass: "Background", Default: DefForeground},
			tk.OptionSpec{Name: "-state", DBName: "state", DBClass: "State", Default: "normal"},
		)
	}
	switch kind {
	case kindCheck:
		specs = append(specs,
			tk.OptionSpec{Name: "-variable", DBName: "variable", DBClass: "Variable", Default: ""},
			tk.OptionSpec{Name: "-onvalue", DBName: "onValue", DBClass: "Value", Default: "1"},
			tk.OptionSpec{Name: "-offvalue", DBName: "offValue", DBClass: "Value", Default: "0"},
			tk.OptionSpec{Name: "-selector", DBName: "selector", DBClass: "Foreground", Default: "firebrick"},
		)
	case kindRadio:
		specs = append(specs,
			tk.OptionSpec{Name: "-variable", DBName: "variable", DBClass: "Variable", Default: "selectedButton"},
			tk.OptionSpec{Name: "-value", DBName: "value", DBClass: "Value", Default: ""},
			tk.OptionSpec{Name: "-selector", DBName: "selector", DBClass: "Foreground", Default: "firebrick"},
		)
	}
	// Buttons default to a raised relief; labels are flat.
	for i := range specs {
		if specs[i].Name == "-relief" && kind != kindLabel {
			specs[i].Default = "raised"
		}
	}
	return specs
}

func classFor(kind int) string {
	switch kind {
	case kindLabel:
		return "Label"
	case kindButton:
		return "Button"
	case kindCheck:
		return "Checkbutton"
	default:
		return "Radiobutton"
	}
}

func registerButtons(app *tk.App) {
	create := func(kind int) tcl.CmdFunc {
		return func(in *tcl.Interp, args []string) (string, error) {
			if len(args) < 2 {
				return "", fmt.Errorf(`wrong # args: should be "%s pathName ?options?"`, args[0])
			}
			b, err := newBase(app, args[1], classFor(kind), buttonSpecs(kind), false)
			if err != nil {
				return "", err
			}
			bt := &Button{base: *b, kind: kind, indicatorSize: 11}
			bt.win.Widget = bt
			bt.geomAndExposure()
			if kind != kindLabel {
				bt.bindBehaviour()
			}
			res, err := bt.install(bt, args[2:])
			if err != nil {
				return "", err
			}
			if kind == kindCheck || kind == kindRadio {
				bt.watchVariable()
			}
			return res, nil
		}
	}
	app.Interp.Register("label", create(kindLabel))
	app.Interp.Register("button", create(kindButton))
	app.Interp.Register("checkbutton", create(kindCheck))
	app.Interp.Register("radiobutton", create(kindRadio))
}

// bindBehaviour installs the class behaviour: highlight on enter, sink on
// press, invoke on release-inside (§4: "if a mouse button is clicked over
// a button widget ... some action will be invoked in the application").
func (bt *Button) bindBehaviour() {
	mask := xproto.EnterWindowMask | xproto.LeaveWindowMask |
		xproto.ButtonPressMask | xproto.ButtonReleaseMask
	bt.win.AddEventHandler(mask, func(ev *xproto.Event) {
		switch int(ev.Type) {
		case xproto.EnterNotify:
			bt.active = true
			bt.win.ScheduleRedraw()
		case xproto.LeaveNotify:
			bt.active = false
			bt.pressed = false
			bt.win.ScheduleRedraw()
		case xproto.ButtonPress:
			if ev.Detail == 1 && bt.cv.Get("-state") != "disabled" {
				bt.pressed = true
				bt.win.ScheduleRedraw()
			}
		case xproto.ButtonRelease:
			if ev.Detail == 1 && bt.pressed {
				bt.pressed = false
				bt.win.ScheduleRedraw()
				inside := ev.X >= 0 && ev.Y >= 0 &&
					int(ev.X) < bt.win.Width && int(ev.Y) < bt.win.Height
				if inside {
					bt.Invoke()
				}
			}
		}
	})
}

// watchVariable keeps a check/radio button's indicator in sync with its
// Tcl variable, including changes made by other widgets or scripts.
func (bt *Button) watchVariable() {
	name := bt.cv.Get("-variable")
	if name == "" {
		return
	}
	update := func() {
		v, err := bt.app.Interp.GetGlobal(name)
		if err != nil {
			v = ""
		}
		var on bool
		if bt.kind == kindCheck {
			on = v == bt.cv.Get("-onvalue")
		} else {
			on = v != "" && v == bt.radioValue()
		}
		if on != bt.on {
			bt.on = on
			bt.win.ScheduleRedraw()
		}
	}
	bt.app.Interp.TraceVar(name, "wu", func(*tcl.Interp, string, string, string) {
		if !bt.win.Destroyed {
			update()
		}
	})
	update()
}

func (bt *Button) radioValue() string {
	if v := bt.cv.Get("-value"); v != "" {
		return v
	}
	return bt.win.Name
}

// Invoke performs the widget's action: toggling/selecting for indicator
// buttons, then evaluating -command.
func (bt *Button) Invoke() {
	switch bt.kind {
	case kindCheck:
		if bt.on {
			bt.setVariable(bt.cv.Get("-offvalue"))
		} else {
			bt.setVariable(bt.cv.Get("-onvalue"))
		}
	case kindRadio:
		bt.setVariable(bt.radioValue())
	}
	bt.eval(fmt.Sprintf("command bound to %s", bt.win.Path), bt.cv.Get("-command"))
}

func (bt *Button) setVariable(value string) {
	name := bt.cv.Get("-variable")
	if name == "" {
		return
	}
	if _, err := bt.app.Interp.SetGlobal(name, value); err != nil {
		bt.app.BackgroundError("button variable", err)
	}
}

// Flash alternates the button between active and normal colors a few
// times (the ".hello flash" example in §4).
func (bt *Button) Flash() {
	for i := 0; i < 4; i++ {
		bt.active = !bt.active
		bt.Redraw()
		bt.app.Disp.Flush()
		time.Sleep(10 * time.Millisecond)
	}
	bt.Redraw()
}

// recompute implements subcommander.
func (bt *Button) recompute() error {
	if err := bt.resolve(); err != nil {
		return err
	}
	bd := bt.cv.GetInt("-borderwidth", 2)
	padX := bt.cv.GetInt("-padx", 4)
	padY := bt.cv.GetInt("-pady", 2)
	text := bt.cv.Get("-text")
	w := bt.font.TextWidth(text)
	h := bt.font.LineHeight()
	if bm := bt.cv.Get("-bitmap"); bm != "" {
		bitmap, err := bt.app.BitmapByName(bm)
		if err != nil {
			return err
		}
		w, h = bitmap.Width, bitmap.Height
	}
	if chars := bt.cv.GetInt("-width", 0); chars > 0 {
		w = chars * bt.font.TextWidth("0")
	}
	if lines := bt.cv.GetInt("-height", 0); lines > 0 {
		h = lines * bt.font.LineHeight()
	}
	if bt.kind == kindCheck || bt.kind == kindRadio {
		w += bt.indicatorSize + 6
	}
	bt.win.GeometryRequest(w+2*padX+2*bd, h+2*padY+2*bd)
	bt.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander.
func (bt *Button) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "flash":
		if bt.kind == kindLabel {
			return "", fmt.Errorf("labels can't flash")
		}
		bt.Flash()
		return "", nil
	case "invoke":
		if bt.kind == kindLabel {
			return "", fmt.Errorf("labels can't be invoked")
		}
		bt.Invoke()
		return "", nil
	case "activate":
		bt.active = true
		bt.win.ScheduleRedraw()
		return "", nil
	case "deactivate":
		bt.active = false
		bt.win.ScheduleRedraw()
		return "", nil
	case "select":
		if bt.kind == kindCheck {
			bt.setVariable(bt.cv.Get("-onvalue"))
			return "", nil
		}
		if bt.kind == kindRadio {
			bt.setVariable(bt.radioValue())
			return "", nil
		}
	case "deselect":
		if bt.kind == kindCheck {
			bt.setVariable(bt.cv.Get("-offvalue"))
			return "", nil
		}
		if bt.kind == kindRadio {
			if bt.on {
				bt.setVariable("")
			}
			return "", nil
		}
	case "toggle":
		if bt.kind == kindCheck {
			bt.Invoke()
			return "", nil
		}
	}
	return "", fmt.Errorf("bad option %q for %s widget", sub, classFor(bt.kind))
}

// Redraw implements tk.Widget.
func (bt *Button) Redraw() {
	if bt.win.Destroyed {
		return
	}
	bg := bt.bg
	fg := bt.fg
	disabled := bt.kind != kindLabel && bt.cv.Get("-state") == "disabled"
	switch {
	case disabled:
		// Disabled widgets draw their content greyed out.
		fg = shade(bg, 0.55)
	case bt.active && bt.kind != kindLabel:
		if px, err := bt.app.Color(bt.cv.Get("-activebackground")); err == nil {
			bg = px
		}
		if px, err := bt.app.Color(bt.cv.Get("-activeforeground")); err == nil {
			fg = px
		}
	}
	bt.clear(bg)
	bd := bt.cv.GetInt("-borderwidth", 2)
	relief := bt.cv.Get("-relief")
	if bt.pressed {
		relief = "sunken"
	}
	bt.draw3DBorder(0, 0, bt.win.Width, bt.win.Height, bd, bg, relief)

	contentX := bd + bt.cv.GetInt("-padx", 4)
	// Indicator for check/radio buttons.
	if bt.kind == kindCheck || bt.kind == kindRadio {
		selColor := bg
		if bt.on {
			if px, err := bt.app.Color(bt.cv.Get("-selector")); err == nil {
				selColor = px
			}
		}
		size := bt.indicatorSize
		y := (bt.win.Height - size) / 2
		gcSel := bt.app.GC(selColor, bg, 1, bt.fontID())
		if bt.kind == kindCheck {
			bt.app.Disp.FillRectangle(bt.win.XID, gcSel, contentX, y, size, size)
			bt.draw3DBorder(contentX, y, size, size, 2, bg, "sunken")
		} else {
			pts := []xproto.Point{
				{X: int16(contentX + size/2), Y: int16(y)},
				{X: int16(contentX + size), Y: int16(y + size/2)},
				{X: int16(contentX + size/2), Y: int16(y + size)},
				{X: int16(contentX), Y: int16(y + size/2)},
			}
			bt.app.Disp.FillPolygon(bt.win.XID, gcSel, pts)
		}
		contentX += size + 6
	}

	// Text or bitmap.
	if bm := bt.cv.Get("-bitmap"); bm != "" {
		if bitmap, err := bt.app.BitmapByName(bm); err == nil {
			bt.drawBitmap(bitmap, contentX, (bt.win.Height-bitmap.Height)/2, fg, bg)
		}
		return
	}
	text := bt.cv.Get("-text")
	if text == "" {
		return
	}
	gc := bt.app.GC(fg, bg, 1, bt.fontID())
	var x int
	if bt.kind == kindCheck || bt.kind == kindRadio {
		x = contentX
	} else {
		switch bt.cv.Get("-anchor") {
		case "w", "nw", "sw":
			x = contentX
		case "e", "ne", "se":
			x = bt.win.Width - bd - bt.cv.GetInt("-padx", 4) - bt.font.TextWidth(text)
		default:
			x = (bt.win.Width - bt.font.TextWidth(text)) / 2
		}
	}
	y := (bt.win.Height+bt.font.Ascent-bt.font.Descent)/2 + bt.font.Descent/2
	bt.app.Disp.DrawString(bt.win.XID, gc, x, y, text)
}

// drawBitmap renders a cached bitmap pattern in the foreground color.
func (bt *Button) drawBitmap(bm *tk.Bitmap, x, y int, fg, bg uint32) {
	gc := bt.app.GC(fg, bg, 1, bt.fontID())
	var pts []xproto.Rect
	for yy := 0; yy < bm.Height; yy++ {
		for xx := 0; xx < bm.Width; xx++ {
			if bm.Rows[yy*bm.Width+xx] {
				pts = append(pts, xproto.Rect{X: int16(x + xx), Y: int16(y + yy), W: 1, H: 1})
			}
		}
	}
	if len(pts) > 0 {
		bt.app.Disp.Request(&xproto.PolyFillRectangleReq{Drawable: bt.win.XID, Gc: gc, Rects: pts})
	}
}
