package widget

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xproto"
)

// Text implements a multi-line editable text widget — the component the
// paper's §6 debugger/editor scenario assumes ("Tk-based debuggers and
// editors can be built as separate programs") and the natural host for
// its hypertext sketch: character ranges carry named tags, tags can
// change display attributes, and tags can have event bindings, so "a
// hypertext system can be implemented by associating Tcl commands with
// pieces of text".
//
// Indices are "line.char" (lines 1-based, chars 0-based), "end",
// "insert", or "L.end". The widget command supports insert, delete, get,
// index, mark set insert, view/yview, and the tag subcommands add,
// remove, names, configure and bind.
type Text struct {
	base

	lines   []string
	curLine int // insertion cursor line (0-based internally)
	curChar int
	topLine int // first visible line (0-based)

	tags map[string]*textTag
}

type textTag struct {
	name       string
	background string
	foreground string
	underline  bool
	ranges     []textRange
	bindings   map[string]string
}

type textRange struct {
	startLine, startChar int
	endLine, endChar     int
}

func textSpecs() []tk.OptionSpec {
	specs := standardSpecs("White")
	for i := range specs {
		if specs[i].Name == "-relief" {
			specs[i].Default = "sunken"
		}
	}
	return append(specs,
		tk.OptionSpec{Name: "-width", DBName: "width", DBClass: "Width", Default: "40"},
		tk.OptionSpec{Name: "-height", DBName: "height", DBClass: "Height", Default: "10"},
		tk.OptionSpec{Name: "-scroll", DBName: "scrollCommand", DBClass: "ScrollCommand", Default: ""},
		tk.OptionSpec{Name: "-yscroll", Synonym: "-scroll"},
	)
}

func registerText(app *tk.App) {
	app.Interp.Register("text", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "text pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Text", textSpecs(), false)
		if err != nil {
			return "", err
		}
		tx := &Text{base: *b, lines: []string{""}, tags: make(map[string]*textTag)}
		tx.win.Widget = tx
		tx.geomAndExposure()
		tx.bindBehaviour()
		// A resize changes how many lines are visible; keep the attached
		// scrollbar current.
		tx.win.AddEventHandler(xproto.StructureNotifyMask, func(ev *xproto.Event) {
			if ev.Type == xproto.ConfigureNotify {
				tx.updateScrollbar()
			}
		})
		app.SetSelectionHandler(tx.win, func() string { return tx.Get(0, 0, len(tx.lines)-1, len(tx.lines[len(tx.lines)-1])) })
		return tx.install(tx, args[2:])
	})
}

// --- indices ---------------------------------------------------------------

// parseTextIndex resolves an index spec to 0-based (line, char), clamped.
func (tx *Text) parseTextIndex(spec string) (int, int, error) {
	switch spec {
	case "end":
		last := len(tx.lines) - 1
		return last, len(tx.lines[last]), nil
	case "insert":
		return tx.curLine, tx.curChar, nil
	}
	dot := strings.IndexByte(spec, '.')
	if dot < 0 {
		return 0, 0, fmt.Errorf("bad text index %q", spec)
	}
	line, err := strconv.Atoi(spec[:dot])
	if err != nil {
		return 0, 0, fmt.Errorf("bad text index %q", spec)
	}
	line-- // external indices are 1-based
	if line < 0 {
		line = 0
	}
	if line >= len(tx.lines) {
		line = len(tx.lines) - 1
	}
	charSpec := spec[dot+1:]
	if charSpec == "end" {
		return line, len(tx.lines[line]), nil
	}
	ch, err := strconv.Atoi(charSpec)
	if err != nil {
		return 0, 0, fmt.Errorf("bad text index %q", spec)
	}
	if ch < 0 {
		ch = 0
	}
	if ch > len(tx.lines[line]) {
		ch = len(tx.lines[line])
	}
	return line, ch, nil
}

func formatIndex(line, ch int) string {
	return fmt.Sprintf("%d.%d", line+1, ch)
}

// --- editing ---------------------------------------------------------------

// Insert places text at (line, ch); embedded newlines split lines.
func (tx *Text) Insert(line, ch int, s string) {
	parts := strings.Split(s, "\n")
	cur := tx.lines[line]
	head, tail := cur[:ch], cur[ch:]
	if len(parts) == 1 {
		tx.lines[line] = head + s + tail
		if tx.curLine == line && tx.curChar >= ch {
			tx.curChar += len(s)
		}
	} else {
		newLines := make([]string, 0, len(tx.lines)+len(parts)-1)
		newLines = append(newLines, tx.lines[:line]...)
		newLines = append(newLines, head+parts[0])
		newLines = append(newLines, parts[1:len(parts)-1]...)
		newLines = append(newLines, parts[len(parts)-1]+tail)
		newLines = append(newLines, tx.lines[line+1:]...)
		tx.lines = newLines
		tx.curLine = line + len(parts) - 1
		tx.curChar = len(parts[len(parts)-1])
	}
	tx.updateScrollbar()
	tx.win.ScheduleRedraw()
}

// Delete removes the range [start, end).
func (tx *Text) Delete(l1, c1, l2, c2 int) {
	if l1 > l2 || (l1 == l2 && c1 >= c2) {
		return
	}
	head := tx.lines[l1][:c1]
	tail := tx.lines[l2][c2:]
	newLines := make([]string, 0, len(tx.lines))
	newLines = append(newLines, tx.lines[:l1]...)
	newLines = append(newLines, head+tail)
	newLines = append(newLines, tx.lines[l2+1:]...)
	tx.lines = newLines
	tx.curLine, tx.curChar = l1, c1
	tx.updateScrollbar()
	tx.win.ScheduleRedraw()
}

// Get returns the text in [start, end).
func (tx *Text) Get(l1, c1, l2, c2 int) string {
	if l1 > l2 || (l1 == l2 && c1 >= c2) {
		return ""
	}
	if l1 == l2 {
		return tx.lines[l1][c1:c2]
	}
	var b strings.Builder
	b.WriteString(tx.lines[l1][c1:])
	for i := l1 + 1; i < l2; i++ {
		b.WriteByte('\n')
		b.WriteString(tx.lines[i])
	}
	b.WriteByte('\n')
	b.WriteString(tx.lines[l2][:c2])
	return b.String()
}

// --- geometry and behaviour --------------------------------------------

func (tx *Text) lineHeight() int { return tx.font.LineHeight() + 2 }

func (tx *Text) visibleLines() int {
	bd := tx.cv.GetInt("-borderwidth", 2)
	n := (tx.win.Height - 2*bd) / tx.lineHeight()
	if n < 1 {
		n = 1
	}
	return n
}

// indexAtXY converts window coordinates to a text position.
func (tx *Text) indexAtXY(x, y int) (int, int) {
	bd := tx.cv.GetInt("-borderwidth", 2)
	line := tx.topLine + (y-bd)/tx.lineHeight()
	if line < 0 {
		line = 0
	}
	if line >= len(tx.lines) {
		line = len(tx.lines) - 1
	}
	cw := tx.font.TextWidth("0")
	if cw < 1 {
		cw = 1
	}
	ch := (x - bd - 3 + cw/2) / cw
	if ch < 0 {
		ch = 0
	}
	if ch > len(tx.lines[line]) {
		ch = len(tx.lines[line])
	}
	return line, ch
}

func (tx *Text) bindBehaviour() {
	mask := xproto.ButtonPressMask | xproto.ButtonReleaseMask | xproto.KeyPressMask
	tx.win.AddEventHandler(mask, func(ev *xproto.Event) {
		switch int(ev.Type) {
		case xproto.ButtonPress:
			if ev.Detail != 1 {
				return
			}
			tx.curLine, tx.curChar = tx.indexAtXY(int(ev.X), int(ev.Y))
			tx.app.Disp.SetInputFocus(tx.win.XID)
			tx.win.ScheduleRedraw()
			tx.fireTagBinding(fmt.Sprintf("<Button-%d>", ev.Detail), ev)
		case xproto.ButtonRelease:
			tx.fireTagBinding(fmt.Sprintf("<ButtonRelease-%d>", ev.Detail), ev)
		case xproto.KeyPress:
			tx.handleKey(ev)
		}
	})
}

// fireTagBinding runs the binding of any tag covering the pointer
// position (§6's active text).
func (tx *Text) fireTagBinding(spec string, ev *xproto.Event) {
	line, ch := tx.indexAtXY(int(ev.X), int(ev.Y))
	for _, name := range tx.tagNames() {
		tag := tx.tags[name]
		script, ok := tag.bindings[spec]
		if !ok || !tag.covers(line, ch) {
			continue
		}
		script = strings.ReplaceAll(script, "%x", strconv.Itoa(int(ev.X)))
		script = strings.ReplaceAll(script, "%y", strconv.Itoa(int(ev.Y)))
		tx.eval(fmt.Sprintf("tag %q binding on %s", name, tx.win.Path), script)
		return
	}
}

func (tag *textTag) covers(line, ch int) bool {
	for _, r := range tag.ranges {
		afterStart := line > r.startLine || (line == r.startLine && ch >= r.startChar)
		beforeEnd := line < r.endLine || (line == r.endLine && ch < r.endChar)
		if afterStart && beforeEnd {
			return true
		}
	}
	return false
}

func (tx *Text) handleKey(ev *xproto.Event) {
	switch ev.Keysym {
	case xproto.KsBackSpace:
		if tx.curChar > 0 {
			tx.Delete(tx.curLine, tx.curChar-1, tx.curLine, tx.curChar)
		} else if tx.curLine > 0 {
			prevLen := len(tx.lines[tx.curLine-1])
			tx.Delete(tx.curLine-1, prevLen, tx.curLine, 0)
		}
	case xproto.KsReturn:
		tx.Insert(tx.curLine, tx.curChar, "\n")
	case xproto.KsLeft:
		if tx.curChar > 0 {
			tx.curChar--
		} else if tx.curLine > 0 {
			tx.curLine--
			tx.curChar = len(tx.lines[tx.curLine])
		}
		tx.win.ScheduleRedraw()
	case xproto.KsRight:
		if tx.curChar < len(tx.lines[tx.curLine]) {
			tx.curChar++
		} else if tx.curLine < len(tx.lines)-1 {
			tx.curLine++
			tx.curChar = 0
		}
		tx.win.ScheduleRedraw()
	case xproto.KsUp:
		if tx.curLine > 0 {
			tx.curLine--
			tx.curChar = min(tx.curChar, len(tx.lines[tx.curLine]))
			tx.win.ScheduleRedraw()
		}
	case xproto.KsDown:
		if tx.curLine < len(tx.lines)-1 {
			tx.curLine++
			tx.curChar = min(tx.curChar, len(tx.lines[tx.curLine]))
			tx.win.ScheduleRedraw()
		}
	default:
		if ev.State&xproto.ControlMask != 0 {
			return
		}
		ch := xproto.KeysymRune(ev.Keysym, ev.State)
		if ch == "" || ch == "\n" {
			return
		}
		tx.Insert(tx.curLine, tx.curChar, ch)
	}
}

// updateScrollbar keeps an attached scrollbar current.
func (tx *Text) updateScrollbar() {
	cmd := tx.cv.Get("-scroll")
	if strings.TrimSpace(cmd) == "" {
		return
	}
	window := tx.visibleLines()
	last := tx.topLine + window - 1
	if last >= len(tx.lines) {
		last = len(tx.lines) - 1
	}
	tx.eval("text scroll command", fmt.Sprintf("%s %d %d %d %d",
		cmd, len(tx.lines), window, tx.topLine, last))
}

// View scrolls so that 0-based line is at the top.
func (tx *Text) View(line int) {
	maxTop := len(tx.lines) - tx.visibleLines()
	if maxTop < 0 {
		maxTop = 0
	}
	if line > maxTop {
		line = maxTop
	}
	if line < 0 {
		line = 0
	}
	tx.topLine = line
	tx.updateScrollbar()
	tx.win.ScheduleRedraw()
}

func (tx *Text) tagNames() []string {
	names := make([]string, 0, len(tx.tags))
	for n := range tx.tags {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- widget command ----------------------------------------------------

// recompute implements subcommander.
func (tx *Text) recompute() error {
	if err := tx.resolve(); err != nil {
		return err
	}
	bd := tx.cv.GetInt("-borderwidth", 2)
	cols := tx.cv.GetInt("-width", 40)
	rows := tx.cv.GetInt("-height", 10)
	tx.win.GeometryRequest(cols*tx.font.TextWidth("0")+2*bd+6, rows*tx.lineHeight()+2*bd)
	tx.win.ScheduleRedraw()
	tx.updateScrollbar()
	return nil
}

// widgetCommand implements subcommander.
func (tx *Text) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "insert":
		if len(args) != 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s insert index string"`, tx.win.Path)
		}
		l, c, err := tx.parseTextIndex(args[0])
		if err != nil {
			return "", err
		}
		tx.Insert(l, c, args[1])
		return "", nil
	case "delete":
		if len(args) < 1 || len(args) > 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s delete index1 ?index2?"`, tx.win.Path)
		}
		l1, c1, err := tx.parseTextIndex(args[0])
		if err != nil {
			return "", err
		}
		l2, c2 := l1, c1+1
		if c2 > len(tx.lines[l1]) {
			if l1 < len(tx.lines)-1 {
				l2, c2 = l1+1, 0
			} else {
				c2 = len(tx.lines[l1])
			}
		}
		if len(args) == 2 {
			if l2, c2, err = tx.parseTextIndex(args[1]); err != nil {
				return "", err
			}
		}
		tx.Delete(l1, c1, l2, c2)
		return "", nil
	case "get":
		if len(args) < 1 || len(args) > 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s get index1 ?index2?"`, tx.win.Path)
		}
		l1, c1, err := tx.parseTextIndex(args[0])
		if err != nil {
			return "", err
		}
		l2, c2 := l1, min(c1+1, len(tx.lines[l1]))
		if len(args) == 2 {
			if l2, c2, err = tx.parseTextIndex(args[1]); err != nil {
				return "", err
			}
		}
		return tx.Get(l1, c1, l2, c2), nil
	case "index":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s index index"`, tx.win.Path)
		}
		l, c, err := tx.parseTextIndex(args[0])
		if err != nil {
			return "", err
		}
		return formatIndex(l, c), nil
	case "mark":
		if len(args) == 3 && args[0] == "set" && args[1] == "insert" {
			l, c, err := tx.parseTextIndex(args[2])
			if err != nil {
				return "", err
			}
			tx.curLine, tx.curChar = l, c
			tx.win.ScheduleRedraw()
			return "", nil
		}
		return "", fmt.Errorf(`only "mark set insert index" is supported`)
	case "view", "yview":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s %s lineNum"`, tx.win.Path, sub)
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return "", fmt.Errorf("expected integer but got %q", args[0])
		}
		tx.View(n)
		return "", nil
	case "lines":
		return strconv.Itoa(len(tx.lines)), nil
	case "tag":
		return tx.tagCommand(args)
	}
	return "", fmt.Errorf("bad option %q for text widget", sub)
}

func (tx *Text) tagCommand(args []string) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf(`wrong # args: should be "%s tag option ?arg ...?"`, tx.win.Path)
	}
	getTag := func(name string) *textTag {
		tag, ok := tx.tags[name]
		if !ok {
			tag = &textTag{name: name, bindings: make(map[string]string)}
			tx.tags[name] = tag
		}
		return tag
	}
	switch args[0] {
	case "add":
		if len(args) != 4 {
			return "", fmt.Errorf(`wrong # args: should be "%s tag add name index1 index2"`, tx.win.Path)
		}
		l1, c1, err := tx.parseTextIndex(args[2])
		if err != nil {
			return "", err
		}
		l2, c2, err := tx.parseTextIndex(args[3])
		if err != nil {
			return "", err
		}
		tag := getTag(args[1])
		tag.ranges = append(tag.ranges, textRange{l1, c1, l2, c2})
		tx.win.ScheduleRedraw()
		return "", nil
	case "remove":
		if len(args) != 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s tag remove name"`, tx.win.Path)
		}
		if tag, ok := tx.tags[args[1]]; ok {
			tag.ranges = nil
			tx.win.ScheduleRedraw()
		}
		return "", nil
	case "names":
		return tcl.FormatList(tx.tagNames()), nil
	case "configure":
		if len(args) < 2 || len(args)%2 != 0 {
			return "", fmt.Errorf(`wrong # args: should be "%s tag configure name ?option value ...?"`, tx.win.Path)
		}
		tag := getTag(args[1])
		for i := 2; i < len(args); i += 2 {
			switch args[i] {
			case "-background":
				tag.background = args[i+1]
			case "-foreground":
				tag.foreground = args[i+1]
			case "-underline":
				tag.underline = args[i+1] == "1" || args[i+1] == "true"
			default:
				return "", fmt.Errorf("unknown tag option %q", args[i])
			}
		}
		tx.win.ScheduleRedraw()
		return "", nil
	case "bind":
		if len(args) < 3 || len(args) > 4 {
			return "", fmt.Errorf(`wrong # args: should be "%s tag bind name event ?script?"`, tx.win.Path)
		}
		tag := getTag(args[1])
		if len(args) == 3 {
			return tag.bindings[args[2]], nil
		}
		if args[3] == "" {
			delete(tag.bindings, args[2])
		} else {
			tag.bindings[args[2]] = args[3]
		}
		return "", nil
	}
	return "", fmt.Errorf("bad tag option %q: should be add, bind, configure, names, or remove", args[0])
}

// Redraw implements tk.Widget.
func (tx *Text) Redraw() {
	if tx.win.Destroyed {
		return
	}
	tx.clear(tx.bg)
	bd := tx.cv.GetInt("-borderwidth", 2)
	d := tx.app.Disp
	lh := tx.lineHeight()
	cw := tx.font.TextWidth("0")
	visible := tx.visibleLines()

	// Tag backgrounds first.
	for _, name := range tx.tagNames() {
		tag := tx.tags[name]
		if tag.background == "" {
			continue
		}
		px, err := tx.app.Color(tag.background)
		if err != nil {
			continue
		}
		gc := tx.app.GC(px, px, 1, tx.fontID())
		for _, r := range tag.ranges {
			for line := max(r.startLine, tx.topLine); line <= r.endLine && line < tx.topLine+visible && line < len(tx.lines); line++ {
				c1, c2 := 0, len(tx.lines[line])
				if line == r.startLine {
					c1 = r.startChar
				}
				if line == r.endLine {
					c2 = r.endChar
				}
				if c2 <= c1 {
					continue
				}
				y := bd + (line-tx.topLine)*lh
				d.FillRectangle(tx.win.XID, gc, bd+3+c1*cw, y, (c2-c1)*cw, lh)
			}
		}
	}

	// Text lines (per-tag foreground applied per whole line segment for
	// simplicity: tagged segments redrawn over the base text).
	gcText := tx.app.GC(tx.fg, tx.bg, 1, tx.fontID())
	for row := 0; row < visible; row++ {
		line := tx.topLine + row
		if line >= len(tx.lines) {
			break
		}
		y := bd + row*lh + tx.font.Ascent + 1
		d.DrawString(tx.win.XID, gcText, bd+3, y, tx.lines[line])
	}
	for _, name := range tx.tagNames() {
		tag := tx.tags[name]
		if tag.foreground == "" && !tag.underline {
			continue
		}
		fg := tx.fg
		if tag.foreground != "" {
			if px, err := tx.app.Color(tag.foreground); err == nil {
				fg = px
			}
		}
		gc := tx.app.GC(fg, tx.bg, 1, tx.fontID())
		for _, r := range tag.ranges {
			for line := max(r.startLine, tx.topLine); line <= r.endLine && line < tx.topLine+visible && line < len(tx.lines); line++ {
				c1, c2 := 0, len(tx.lines[line])
				if line == r.startLine {
					c1 = r.startChar
				}
				if line == r.endLine {
					c2 = r.endChar
				}
				if c2 <= c1 || c1 >= len(tx.lines[line]) {
					continue
				}
				c2 = min(c2, len(tx.lines[line]))
				y := bd + (line-tx.topLine)*lh + tx.font.Ascent + 1
				d.DrawString(tx.win.XID, gc, bd+3+c1*cw, y, tx.lines[line][c1:c2])
				if tag.underline {
					d.FillRectangle(tx.win.XID, gc, bd+3+c1*cw, y+2, (c2-c1)*cw, 1)
				}
			}
		}
	}

	// Insertion cursor.
	if tx.curLine >= tx.topLine && tx.curLine < tx.topLine+visible {
		y := bd + (tx.curLine-tx.topLine)*lh
		d.FillRectangle(tx.win.XID, gcText, bd+3+tx.curChar*cw, y+1, 1, lh-2)
	}
	tx.draw3DBorder(0, 0, tx.win.Width, tx.win.Height, bd, tx.bg, tx.cv.Get("-relief"))
}
