package widget_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/xproto"
)

// newApp builds a full application with a private in-process server.
func newApp(t *testing.T) (*core.App, *bytes.Buffer) {
	t.Helper()
	app, err := core.NewApp(core.Options{Name: "wtest"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	var out bytes.Buffer
	app.Interp.Out = &out
	return app, &out
}

// click synthesizes a button-1 click at root coordinates.
func click(app *core.App, x, y int) {
	app.Disp.WarpPointer(x, y)
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Update()
}

// centerOf returns the root coordinates of a widget's center.
func centerOf(t *testing.T, app *core.App, path string) (int, int) {
	t.Helper()
	w, err := app.NameToWindow(path)
	if err != nil {
		t.Fatal(err)
	}
	rx, ry := w.RootCoords()
	return rx + w.Width/2, ry + w.Height/2
}

// TestSection4ButtonExample runs the exact §4 example: create a button,
// invoke it with a mouse click, then reconfigure it.
func TestSection4ButtonExample(t *testing.T) {
	app, out := newApp(t)
	app.MustEval(`button .hello -bg Red -text "Hello, world" -command "print Hello!\n"`)
	app.MustEval(`pack append . .hello {top}`)
	app.Update()

	w, _ := app.NameToWindow(".hello")
	if w.Class != "Button" {
		t.Fatalf("class = %q", w.Class)
	}
	// The widget sized itself to its text.
	if w.Width < 60 || w.Height < 10 {
		t.Fatalf("button size %dx%d seems wrong", w.Width, w.Height)
	}
	// Clicking the button executes the command.
	cx, cy := centerOf(t, app, ".hello")
	click(app, cx, cy)
	// The \n in the quoted -command became a command separator during
	// creation-time substitution, so print emits just "Hello!".
	if out.String() != "Hello!" {
		t.Fatalf("command output %q, want %q", out.String(), "Hello!")
	}

	// ".hello flash" and ".hello configure -bg PalePink1 -relief sunken"
	// are the paper's follow-up widget commands.
	app.MustEval(`.hello flash`)
	app.MustEval(`.hello configure -bg PalePink1 -relief sunken`)
	app.Update()
	if got := app.MustEval(`lindex [.hello configure -background] 4`); got != "PalePink1" {
		t.Fatalf("configured background = %q", got)
	}
	if got := app.MustEval(`lindex [.hello configure -relief] 4`); got != "sunken" {
		t.Fatalf("configured relief = %q", got)
	}
}

func TestButtonConfigureIntrospection(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`button .b -text Hi`)
	// Full listing contains tuples.
	all := app.MustEval(`.b configure`)
	if !strings.Contains(all, "-background background Background") {
		t.Fatalf("configure listing missing background: %q", all)
	}
	// Single-option form.
	one := app.MustEval(`.b configure -text`)
	if one != "-text text Text {} Hi" {
		t.Fatalf("configure -text = %q", one)
	}
	// Synonym form.
	if got := app.MustEval(`.b configure -bg`); got != "-bg -background" {
		t.Fatalf("configure -bg = %q", got)
	}
	// Abbreviations work.
	app.MustEval(`.b configure -backgro Blue`)
	if got := app.MustEval(`lindex [.b configure -background] 4`); got != "Blue" {
		t.Fatalf("abbreviated configure = %q", got)
	}
	// Unknown option errors.
	if _, err := app.Eval(`.b configure -bogus x`); err == nil {
		t.Fatal("bogus option should fail")
	}
}

func TestButtonInvokeAndStates(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`button .b -text Go -command {incr clicks}`)
	app.MustEval(`set clicks 0`)
	app.MustEval(`.b invoke`)
	app.MustEval(`.b invoke`)
	if got := app.MustEval(`set clicks`); got != "2" {
		t.Fatalf("clicks = %s", got)
	}
	// A disabled button ignores clicks.
	app.MustEval(`pack append . .b {top}`)
	app.MustEval(`.b configure -state disabled`)
	app.Update()
	cx, cy := centerOf(t, app, ".b")
	click(app, cx, cy)
	if got := app.MustEval(`set clicks`); got != "2" {
		t.Fatalf("disabled button fired; clicks = %s", got)
	}
}

func TestCheckbuttonVariable(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`checkbutton .c -text Beep -variable beeping`)
	app.MustEval(`.c invoke`)
	if got := app.MustEval(`set beeping`); got != "1" {
		t.Fatalf("after invoke, beeping = %q", got)
	}
	app.MustEval(`.c invoke`)
	if got := app.MustEval(`set beeping`); got != "0" {
		t.Fatalf("after second invoke, beeping = %q", got)
	}
	app.MustEval(`.c select`)
	if got := app.MustEval(`set beeping`); got != "1" {
		t.Fatal("select")
	}
	app.MustEval(`.c deselect`)
	if got := app.MustEval(`set beeping`); got != "0" {
		t.Fatal("deselect")
	}
	app.MustEval(`.c toggle`)
	if got := app.MustEval(`set beeping`); got != "1" {
		t.Fatal("toggle")
	}
	// Custom on/off values.
	app.MustEval(`checkbutton .c2 -variable mode -onvalue fast -offvalue slow`)
	app.MustEval(`.c2 invoke`)
	if got := app.MustEval(`set mode`); got != "fast" {
		t.Fatalf("onvalue = %q", got)
	}
}

func TestRadiobuttonGroup(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`radiobutton .r1 -text A -variable which -value a`)
	app.MustEval(`radiobutton .r2 -text B -variable which -value b`)
	app.MustEval(`.r1 invoke`)
	if got := app.MustEval(`set which`); got != "a" {
		t.Fatalf("which = %q", got)
	}
	app.MustEval(`.r2 invoke`)
	if got := app.MustEval(`set which`); got != "b" {
		t.Fatalf("which = %q", got)
	}
}

func TestLabelHasNoAction(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`label .l -text "Just text"`)
	if _, err := app.Eval(`.l invoke`); err == nil {
		t.Fatal("labels should not be invokable")
	}
	if _, err := app.Eval(`.l flash`); err == nil {
		t.Fatal("labels should not flash")
	}
}

func TestListboxCommands(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`listbox .list -geometry 20x5`)
	app.MustEval(`pack append . .list {top}`)
	for _, it := range []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"} {
		app.MustEval(`.list insert end ` + it)
	}
	app.Update()
	if got := app.MustEval(`.list size`); got != "7" {
		t.Fatalf("size = %s", got)
	}
	if got := app.MustEval(`.list get 0`); got != "alpha" {
		t.Fatalf("get 0 = %q", got)
	}
	if got := app.MustEval(`.list get end`); got != "eta" {
		t.Fatalf("get end = %q", got)
	}
	app.MustEval(`.list insert 1 inserted`)
	if got := app.MustEval(`.list get 1`); got != "inserted" {
		t.Fatalf("insert middle = %q", got)
	}
	app.MustEval(`.list delete 1`)
	if got := app.MustEval(`.list get 1`); got != "beta" {
		t.Fatalf("after delete = %q", got)
	}
	app.MustEval(`.list delete 0 end`)
	if got := app.MustEval(`.list size`); got != "0" {
		t.Fatalf("after delete all = %s", got)
	}
}

// TestListboxScrollbarLinkage wires the two widgets exactly as §4
// describes: the scrollbar's command is ".list view"; the listbox's
// -scroll command is ".scroll set"; clicking the scrollbar changes the
// listbox view.
func TestListboxScrollbarLinkage(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`scrollbar .scroll -command ".list view"`)
	app.MustEval(`listbox .list -scroll ".scroll set" -geometry 10x5`)
	app.MustEval(`pack append . .scroll {right filly} .list {left}`)
	for i := 0; i < 30; i++ {
		app.MustEval(`.list insert end item` + app.MustEval(`format %02d `+itoa(i)))
	}
	app.Update()
	// The listbox told the scrollbar its state.
	got := app.MustEval(`.scroll get`)
	if got != "30 5 0 4" {
		t.Fatalf(".scroll get = %q, want \"30 5 0 4\"", got)
	}
	// Scrolling via the widget command (what the scrollbar synthesizes).
	app.MustEval(`.list view 10`)
	app.Update()
	if got := app.MustEval(`.scroll get`); got != "30 5 10 14" {
		t.Fatalf("after view 10: %q", got)
	}
	// Click the down arrow: the scrollbar runs ".list view 11".
	sb, _ := app.NameToWindow(".scroll")
	rx, ry := sb.RootCoords()
	click(app, rx+sb.Width/2, ry+sb.Height-3)
	app.Update()
	if got := app.MustEval(`.scroll get`); got != "30 5 11 15" {
		t.Fatalf("after arrow click: %q", got)
	}
	// Click the up arrow.
	click(app, rx+sb.Width/2, ry+3)
	app.Update()
	if got := app.MustEval(`.scroll get`); got != "30 5 10 14" {
		t.Fatalf("after up arrow: %q", got)
	}
}

func itoa(i int) string {
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestListboxSelectionToXSelection(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`listbox .list -geometry 12x6`)
	app.MustEval(`pack append . .list {top}`)
	for _, it := range []string{"one", "two", "three"} {
		app.MustEval(`.list insert end ` + it)
	}
	app.Update()
	app.MustEval(`.list select from 1`)
	if got := app.MustEval(`.list curselection`); got != "1" {
		t.Fatalf("curselection = %q", got)
	}
	// The X selection now holds the item (Figure 9's "selection get").
	if got := app.MustEval(`selection get`); got != "two" {
		t.Fatalf("selection get = %q", got)
	}
	app.MustEval(`.list select to 2`)
	if got := app.MustEval(`selection get`); got != "two\nthree" {
		t.Fatalf("multi selection = %q", got)
	}
	// Click selects too.
	lb, _ := app.NameToWindow(".list")
	rx, ry := lb.RootCoords()
	click(app, rx+20, ry+8) // first row
	if got := app.MustEval(`selection get`); got != "one" {
		t.Fatalf("click selection = %q", got)
	}
}

func TestEntryEditing(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`entry .e -width 20`)
	app.MustEval(`pack append . .e {top}`)
	app.Update()
	app.MustEval(`.e insert 0 "hello"`)
	if got := app.MustEval(`.e get`); got != "hello" {
		t.Fatalf("get = %q", got)
	}
	app.MustEval(`.e insert end " world"`)
	if got := app.MustEval(`.e get`); got != "hello world" {
		t.Fatalf("get = %q", got)
	}
	app.MustEval(`.e delete 0 6`)
	if got := app.MustEval(`.e get`); got != "world" {
		t.Fatalf("after delete = %q", got)
	}
	// Keyboard input: click to focus, then type.
	cx, cy := centerOf(t, app, ".e")
	click(app, cx, cy)
	app.MustEval(`.e delete 0 end`)
	app.MustEval(`.e icursor 0`)
	for _, k := range "ab" {
		app.Disp.FakeKey(xproto.Keysym(k), true)
		app.Disp.FakeKey(xproto.Keysym(k), false)
	}
	app.Update()
	if got := app.MustEval(`.e get`); got != "ab" {
		t.Fatalf("typed text = %q", got)
	}
	// Backspace.
	app.Disp.FakeKey(xproto.KsBackSpace, true)
	app.Disp.FakeKey(xproto.KsBackSpace, false)
	app.Update()
	if got := app.MustEval(`.e get`); got != "a" {
		t.Fatalf("after backspace = %q", got)
	}
	// Shifted letter.
	app.Disp.FakeKey(xproto.KsShiftL, true)
	app.Disp.FakeKey('b', true)
	app.Disp.FakeKey('b', false)
	app.Disp.FakeKey(xproto.KsShiftL, false)
	app.Update()
	if got := app.MustEval(`.e get`); got != "aB" {
		t.Fatalf("shifted letter = %q", got)
	}
}

// TestSection5BackspaceWordBinding implements the paper's §5 example: a
// user-level binding that backspaces over a whole word when Control-w is
// typed in an entry — without modifying the entry widget.
func TestSection5BackspaceWordBinding(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`entry .e -width 30`)
	app.MustEval(`pack append . .e {top}`)
	app.MustEval(`.e insert 0 "hello brave world"`)
	app.MustEval(`.e icursor end`)
	app.MustEval(`bind .e <Control-w> {
		set s [.e get]
		set i [string wordstart $s [expr [.e index insert]-1]]
		.e delete $i end
	}`)
	app.Update()
	cx, cy := centerOf(t, app, ".e")
	click(app, cx, cy)
	app.MustEval(`.e icursor end`)
	app.Disp.FakeKey(xproto.KsControlL, true)
	app.Disp.FakeKey('w', true)
	app.Disp.FakeKey('w', false)
	app.Disp.FakeKey(xproto.KsControlL, false)
	app.Update()
	if got := app.MustEval(`.e get`); got != "hello brave " {
		t.Fatalf("after Control-w: %q", got)
	}
}

func TestEntryTextvariable(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`set name "initial"`)
	app.MustEval(`entry .e -textvariable name`)
	if got := app.MustEval(`.e get`); got != "initial" {
		t.Fatalf("initial = %q", got)
	}
	app.MustEval(`set name "changed"`)
	if got := app.MustEval(`.e get`); got != "changed" {
		t.Fatalf("after var change = %q", got)
	}
	app.MustEval(`.e insert end "!"`)
	if got := app.MustEval(`set name`); got != "changed!" {
		t.Fatalf("variable after edit = %q", got)
	}
}

func TestScale(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`scale .s -from 0 -to 100 -length 120 -command {set scaleval}`)
	app.MustEval(`pack append . .s {top}`)
	app.Update()
	app.MustEval(`.s set 42`)
	if got := app.MustEval(`.s get`); got != "42" {
		t.Fatalf("get = %q", got)
	}
	if got := app.MustEval(`set scaleval`); got != "42" {
		t.Fatalf("command value = %q", got)
	}
	// Click near the right end moves the value up.
	s, _ := app.NameToWindow(".s")
	rx, ry := s.RootCoords()
	click(app, rx+s.Width-5, ry+8)
	v := app.MustEval(`.s get`)
	if v == "42" {
		t.Fatalf("click did not move scale (still %s)", v)
	}
}

func TestMessageWrapping(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`message .m -width 100 -text "the quick brown fox jumps over the lazy dog again and again"`)
	app.MustEval(`pack append . .m {top}`)
	app.Update()
	m, _ := app.NameToWindow(".m")
	// Multiple lines: height exceeds two line heights.
	if m.ReqHeight < 30 {
		t.Fatalf("message did not wrap: req height %d", m.ReqHeight)
	}
	if m.ReqWidth > 130 {
		t.Fatalf("message too wide: %d", m.ReqWidth)
	}
}

func TestMenuAndMenubutton(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`menubutton .mb -text File -menu .m`)
	app.MustEval(`menu .m`)
	app.MustEval(`.m add command -label Open -command {set action open}`)
	app.MustEval(`.m add separator`)
	app.MustEval(`.m add command -label Quit -command {set action quit}`)
	app.MustEval(`.m add checkbutton -label Verbose -variable verbose`)
	app.MustEval(`pack append . .mb {left}`)
	app.Update()
	if got := app.MustEval(`.m entrycount`); got != "4" {
		t.Fatalf("entrycount = %s", got)
	}
	if got := app.MustEval(`.m entrylabel 0`); got != "Open" {
		t.Fatalf("entrylabel = %q", got)
	}
	// Programmatic invoke.
	app.MustEval(`.m invoke 2`)
	if got := app.MustEval(`set action`); got != "quit" {
		t.Fatalf("action = %q", got)
	}
	app.MustEval(`.m invoke 3`)
	if got := app.MustEval(`set verbose`); got != "1" {
		t.Fatalf("checkbutton entry: verbose = %q", got)
	}

	// Interactive: press the menubutton to post, click an entry.
	cx, cy := centerOf(t, app, ".mb")
	app.Disp.WarpPointer(cx, cy)
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Update()
	m, _ := app.NameToWindow(".m")
	if !m.Mapped {
		t.Fatal("menu not posted after menubutton press")
	}
	// Click entry 0 ("Open").
	click(app, m.X+10, m.Y+10)
	if got := app.MustEval(`set action`); got != "open" {
		t.Fatalf("clicked entry: action = %q", got)
	}
	if m.Mapped {
		t.Fatal("menu should unpost after invoking")
	}
}

func TestFrameAndToplevel(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`frame .f -width 120 -height 60 -relief ridge -borderwidth 3`)
	app.MustEval(`pack append . .f {top}`)
	app.Update()
	f, _ := app.NameToWindow(".f")
	if f.Width != 120 || f.Height != 60 {
		t.Fatalf("frame size %dx%d", f.Width, f.Height)
	}
	// Old -geometry option.
	app.MustEval(`frame .g -geometry 50x40`)
	g, _ := app.NameToWindow(".g")
	if g.ReqWidth != 50 || g.ReqHeight != 40 {
		t.Fatalf("frame -geometry req %dx%d", g.ReqWidth, g.ReqHeight)
	}
	// Toplevel windows are children of the root on screen.
	app.MustEval(`toplevel .t -width 80 -height 50`)
	app.Update()
	tl, _ := app.NameToWindow(".t")
	if !tl.TopLevel {
		t.Fatal("toplevel flag not set")
	}
	if !tl.Mapped {
		t.Fatal("toplevel should map itself")
	}
}

func TestWidgetCommandLifetime(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`button .b -text Hi`)
	if !app.Interp.HasCommand(".b") {
		t.Fatal("widget command not registered")
	}
	app.MustEval(`destroy .b`)
	if app.Interp.HasCommand(".b") {
		t.Fatal("widget command should be deleted with the widget")
	}
	// Name can be reused.
	app.MustEval(`button .b -text Again`)
	if got := app.MustEval(`lindex [.b configure -text] 4`); got != "Again" {
		t.Fatalf("recreated widget text = %q", got)
	}
}

func TestOptionDatabaseFeedsWidgets(t *testing.T) {
	app, _ := newApp(t)
	// §3.5's example: all buttons get a red background.
	app.MustEval(`option add *Button.background red`)
	app.MustEval(`button .b -text X`)
	if got := app.MustEval(`lindex [.b configure -background] 4`); got != "red" {
		t.Fatalf("option-database background = %q", got)
	}
	// Explicit creation args still win.
	app.MustEval(`button .b2 -text Y -bg green`)
	if got := app.MustEval(`lindex [.b2 configure -background] 4`); got != "green" {
		t.Fatalf("explicit background = %q", got)
	}
}

func TestDialogBoxFromScript(t *testing.T) {
	// §5: "Tk contains no special support for dialog boxes ... dialogs
	// are created by writing short Tcl scripts."
	app, _ := newApp(t)
	app.MustEval(`
		toplevel .dlg -width 10 -height 10
		message .dlg.msg -width 150 -text "Do you really want to quit?"
		frame .dlg.btns
		button .dlg.btns.ok -text OK -command {set answer ok}
		button .dlg.btns.cancel -text Cancel -command {set answer cancel}
		pack append .dlg.btns .dlg.btns.ok {left expand} .dlg.btns.cancel {right expand}
		pack append .dlg .dlg.msg {top fillx} .dlg.btns {bottom fillx}
	`)
	app.Update()
	app.MustEval(`.dlg.btns.ok invoke`)
	if got := app.MustEval(`set answer`); got != "ok" {
		t.Fatalf("dialog answer = %q", got)
	}
	dlg, _ := app.NameToWindow(".dlg")
	if dlg.Width < 100 {
		t.Fatalf("dialog did not grow to content: %d", dlg.Width)
	}
}
