package widget_test

import (
	"strings"
	"testing"

	"repro/internal/xproto"
)

func TestTextInsertDeleteGet(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`text .t -width 30 -height 8`)
	app.MustEval(`pack append . .t {top}`)
	app.Update()

	app.MustEval(`.t insert end "hello world"`)
	if got := app.MustEval(`.t get 1.0 end`); got != "hello world" {
		t.Fatalf("get = %q", got)
	}
	// Multi-line insert splits lines.
	app.MustEval(`.t insert end "\nsecond line\nthird"`)
	if got := app.MustEval(`.t lines`); got != "3" {
		t.Fatalf("lines = %s", got)
	}
	if got := app.MustEval(`.t get 2.0 2.end`); got != "second line" {
		t.Fatalf("line 2 = %q", got)
	}
	// Insert in the middle.
	app.MustEval(`.t insert 1.5 ","`)
	if got := app.MustEval(`.t get 1.0 1.end`); got != "hello, world" {
		t.Fatalf("after mid insert = %q", got)
	}
	// Delete a range spanning lines.
	app.MustEval(`.t delete 1.5 2.6`)
	if got := app.MustEval(`.t get 1.0 1.end`); got != "hello line" {
		t.Fatalf("after span delete = %q", got)
	}
	if got := app.MustEval(`.t lines`); got != "2" {
		t.Fatalf("lines after delete = %s", got)
	}
	// Single-character get and delete.
	if got := app.MustEval(`.t get 1.0`); got != "h" {
		t.Fatalf("single get = %q", got)
	}
	app.MustEval(`.t delete 1.0`)
	if got := app.MustEval(`.t get 1.0 1.end`); got != "ello line" {
		t.Fatalf("after single delete = %q", got)
	}
}

func TestTextIndices(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`text .t`)
	app.MustEval(`.t insert end "abc\ndefgh"`)
	if got := app.MustEval(`.t index end`); got != "2.5" {
		t.Fatalf("index end = %q", got)
	}
	if got := app.MustEval(`.t index 2.end`); got != "2.5" {
		t.Fatalf("index 2.end = %q", got)
	}
	// Out-of-range indices clamp.
	if got := app.MustEval(`.t index 99.99`); got != "2.5" {
		t.Fatalf("clamped index = %q", got)
	}
	// insert mark.
	app.MustEval(`.t mark set insert 1.2`)
	if got := app.MustEval(`.t index insert`); got != "1.2" {
		t.Fatalf("insert mark = %q", got)
	}
	if _, err := app.Eval(`.t index bogus`); err == nil {
		t.Fatal("bad index should fail")
	}
}

func TestTextTyping(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`text .t -width 20 -height 5`)
	app.MustEval(`pack append . .t {top}`)
	app.Update()
	w, _ := app.NameToWindow(".t")
	rx, ry := w.RootCoords()
	click(app, rx+5, ry+5) // focus + cursor at 1.0
	for _, k := range "hi" {
		app.Disp.FakeKey(xproto.Keysym(k), true)
		app.Disp.FakeKey(xproto.Keysym(k), false)
	}
	app.Disp.FakeKey(xproto.KsReturn, true)
	app.Disp.FakeKey(xproto.KsReturn, false)
	app.Disp.FakeKey('x', true)
	app.Disp.FakeKey('x', false)
	app.Update()
	if got := app.MustEval(`.t get 1.0 end`); got != "hi\nx" {
		t.Fatalf("typed = %q", got)
	}
	// Backspace joins lines when at column 0.
	app.Disp.FakeKey(xproto.KsBackSpace, true)
	app.Disp.FakeKey(xproto.KsBackSpace, false)
	app.Disp.FakeKey(xproto.KsBackSpace, false)
	app.Update()
	app.MustEval(`.t mark set insert 2.0`)
	app.Disp.FakeKey(xproto.KsBackSpace, true)
	app.Disp.FakeKey(xproto.KsBackSpace, false)
	app.Update()
	if got := app.MustEval(`.t lines`); got != "1" {
		t.Fatalf("lines after join = %s (%q)", got, app.MustEval(`.t get 1.0 end`))
	}
}

func TestTextTagsDisplayAndBindings(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`text .t -width 30 -height 5 -background white`)
	app.MustEval(`pack append . .t {top}`)
	app.MustEval(`.t insert end "normal LINK normal"`)
	app.MustEval(`.t tag add hot 1.7 1.11`)
	app.MustEval(`.t tag configure hot -background yellow -foreground red -underline 1`)
	app.MustEval(`.t tag bind hot <Button-1> {set followed 1}`)
	app.Update()
	if got := app.MustEval(`.t tag names`); got != "hot" {
		t.Fatalf("tag names = %q", got)
	}
	// The tag background rendered.
	w, _ := app.NameToWindow(".t")
	shot, _ := app.Disp.Screenshot(w.XID)
	yellow := 0
	for i := 0; i+2 < len(shot.Pixels); i += 3 {
		if shot.Pixels[i] == 0xff && shot.Pixels[i+1] == 0xff && shot.Pixels[i+2] == 0 {
			yellow++
		}
	}
	if yellow < 20 {
		t.Fatalf("tag background rendered %d yellow pixels", yellow)
	}
	// Clicking the tagged range fires the binding (§6 hypertext).
	rx, ry := w.RootCoords()
	cw := 6 // font advance
	click(app, rx+2+3+8*cw, ry+8)
	if got := app.MustEval(`set followed`); got != "1" {
		t.Fatalf("tag binding: followed = %q", got)
	}
	// Clicking outside the range does not.
	app.MustEval(`set followed 0`)
	click(app, rx+2+3+1*cw, ry+8)
	if got := app.MustEval(`set followed`); got != "0" {
		t.Fatal("tag binding fired outside its range")
	}
	// Query and remove.
	if app.MustEval(`.t tag bind hot <Button-1>`) == "" {
		t.Fatal("tag bind query")
	}
	app.MustEval(`.t tag remove hot`)
	app.Update()
}

func TestTextScrollLinkage(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`scrollbar .sb -command ".t view"`)
	app.MustEval(`text .t -width 20 -height 4 -scroll ".sb set"`)
	app.MustEval(`pack append . .sb {right filly} .t {left}`)
	for i := 0; i < 20; i++ {
		app.MustEval(`.t insert end "line\n"`)
	}
	app.Update()
	got := app.MustEval(`.sb get`)
	if !strings.HasPrefix(got, "21 4 0") {
		t.Fatalf(".sb get = %q", got)
	}
	app.MustEval(`.t view 10`)
	app.Update()
	if got := app.MustEval(`.sb get`); !strings.HasPrefix(got, "21 4 10") {
		t.Fatalf("after view: %q", got)
	}
}

func TestTextEditorScenario(t *testing.T) {
	// The §6 debugger/editor duo, now with a real text widget: highlight
	// the current line via a tag.
	app, _ := newApp(t)
	app.MustEval(`text .src -width 30 -height 8`)
	app.MustEval(`pack append . .src {top}`)
	app.MustEval(`.src insert end "int main() \{\n  compute();\n  return 0;\n\}"`)
	app.MustEval(`proc highlight {line} {
		.src tag remove pc
		.src tag add pc $line.0 $line.end
		.src tag configure pc -background LightSteelBlue
	}`)
	app.MustEval(`highlight 2`)
	app.Update()
	if got := app.MustEval(`.src get 2.0 2.end`); got != "  compute();" {
		t.Fatalf("line 2 = %q", got)
	}
	if got := app.MustEval(`.src tag names`); got != "pc" {
		t.Fatalf("tags = %q", got)
	}
}
