package widget

import (
	"fmt"
	"strconv"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xproto"
)

// Entry implements the Entry class: a one-line editable text field. The
// paper notes entries were one of the last two widgets to be written; the
// behaviour here covers typing, backspace, cursor motion, click-to-
// position, focus claiming and the Tcl editing commands — enough that the
// paper's §5 example (backspace-over-word via a user binding) works,
// because the contents can be fetched and modified from Tcl.
type Entry struct {
	base
	text    string
	icursor int // insertion point, 0..len(text)
	selFrom int
	selTo   int
}

func entrySpecs() []tk.OptionSpec {
	specs := standardSpecs("White")
	for i := range specs {
		if specs[i].Name == "-relief" {
			specs[i].Default = "sunken"
		}
	}
	return append(specs,
		tk.OptionSpec{Name: "-width", DBName: "width", DBClass: "Width", Default: "20"},
		tk.OptionSpec{Name: "-textvariable", DBName: "textVariable", DBClass: "Variable", Default: ""},
		tk.OptionSpec{Name: "-selectbackground", DBName: "selectBackground", DBClass: "Foreground", Default: DefSelectBackground},
	)
}

func registerEntry(app *tk.App) {
	app.Interp.Register("entry", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "entry pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Entry", entrySpecs(), false)
		if err != nil {
			return "", err
		}
		e := &Entry{base: *b, selFrom: -1}
		e.win.Widget = e
		e.geomAndExposure()
		e.bindBehaviour()
		app.SetSelectionHandler(e.win, func() string { return e.Selected() })
		res, err := e.install(e, args[2:])
		if err != nil {
			return "", err
		}
		e.watchVariable()
		return res, nil
	})
}

// watchVariable links the entry with -textvariable in both directions.
func (e *Entry) watchVariable() {
	name := e.cv.Get("-textvariable")
	if name == "" {
		return
	}
	if v, err := e.app.Interp.GetGlobal(name); err == nil {
		e.setText(v, false)
	}
	e.app.Interp.TraceVar(name, "w", func(*tcl.Interp, string, string, string) {
		if e.win.Destroyed {
			return
		}
		if v, err := e.app.Interp.GetGlobal(name); err == nil && v != e.text {
			e.setText(v, false)
		}
	})
}

// setText replaces the entry contents; when fromEdit is true the
// -textvariable is updated.
func (e *Entry) setText(t string, fromEdit bool) {
	e.text = t
	if e.icursor > len(t) {
		e.icursor = len(t)
	}
	if fromEdit {
		if name := e.cv.Get("-textvariable"); name != "" {
			_, _ = e.app.Interp.SetGlobal(name, t)
		}
	}
	e.win.ScheduleRedraw()
}

// Selected returns the selected substring.
func (e *Entry) Selected() string {
	if e.selFrom < 0 || e.selFrom >= e.selTo || e.selTo > len(e.text) {
		return ""
	}
	return e.text[e.selFrom:e.selTo]
}

// indexAt converts an x pixel coordinate to a character index.
func (e *Entry) indexAt(x int) int {
	bd := e.cv.GetInt("-borderwidth", 2)
	rel := x - bd - 3
	cw := e.font.TextWidth("0")
	if cw < 1 {
		cw = 1
	}
	i := (rel + cw/2) / cw
	if i < 0 {
		i = 0
	}
	if i > len(e.text) {
		i = len(e.text)
	}
	return i
}

func (e *Entry) bindBehaviour() {
	mask := xproto.ButtonPressMask | xproto.KeyPressMask
	e.win.AddEventHandler(mask, func(ev *xproto.Event) {
		switch int(ev.Type) {
		case xproto.ButtonPress:
			if ev.Detail == 1 {
				e.icursor = e.indexAt(int(ev.X))
				e.selFrom = -1
				e.app.Disp.SetInputFocus(e.win.XID)
				e.win.ScheduleRedraw()
			}
		case xproto.KeyPress:
			e.handleKey(ev)
		}
	})
}

func (e *Entry) handleKey(ev *xproto.Event) {
	switch ev.Keysym {
	case xproto.KsBackSpace:
		if e.icursor > 0 {
			e.icursor--
			e.setText(e.text[:e.icursor]+e.text[e.icursor+1:], true)
		}
	case xproto.KsDelete:
		if e.icursor < len(e.text) {
			e.setText(e.text[:e.icursor]+e.text[e.icursor+1:], true)
		}
	case xproto.KsLeft:
		if e.icursor > 0 {
			e.icursor--
			e.win.ScheduleRedraw()
		}
	case xproto.KsRight:
		if e.icursor < len(e.text) {
			e.icursor++
			e.win.ScheduleRedraw()
		}
	case xproto.KsHome:
		e.icursor = 0
		e.win.ScheduleRedraw()
	case xproto.KsEnd:
		e.icursor = len(e.text)
		e.win.ScheduleRedraw()
	default:
		if ev.State&xproto.ControlMask != 0 {
			return // control combinations are left to user bindings (§5)
		}
		ch := xproto.KeysymRune(ev.Keysym, ev.State)
		if ch == "" || ch == "\n" || ch == "\t" {
			return
		}
		e.setText(e.text[:e.icursor]+ch+e.text[e.icursor:], true)
		e.icursor++
	}
}

// recompute implements subcommander.
func (e *Entry) recompute() error {
	if err := e.resolve(); err != nil {
		return err
	}
	bd := e.cv.GetInt("-borderwidth", 2)
	chars := e.cv.GetInt("-width", 20)
	e.win.GeometryRequest(chars*e.font.TextWidth("0")+2*bd+6, e.font.LineHeight()+2*bd+6)
	e.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander.
func (e *Entry) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "get":
		return e.text, nil
	case "insert":
		if len(args) != 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s insert index string"`, e.win.Path)
		}
		i, err := e.parseEntryIndex(args[0])
		if err != nil {
			return "", err
		}
		e.setText(e.text[:i]+args[1]+e.text[i:], true)
		if e.icursor >= i {
			e.icursor += len(args[1])
		}
		return "", nil
	case "delete":
		if len(args) < 1 || len(args) > 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s delete first ?last?"`, e.win.Path)
		}
		first, err := e.parseEntryIndex(args[0])
		if err != nil {
			return "", err
		}
		last := first + 1
		if len(args) == 2 {
			if last, err = e.parseEntryIndex(args[1]); err != nil {
				return "", err
			}
		}
		if last > len(e.text) {
			last = len(e.text)
		}
		if first < last {
			e.setText(e.text[:first]+e.text[last:], true)
			if e.icursor > first {
				e.icursor = first
			}
		}
		return "", nil
	case "icursor":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s icursor index"`, e.win.Path)
		}
		i, err := e.parseEntryIndex(args[0])
		if err != nil {
			return "", err
		}
		e.icursor = i
		e.win.ScheduleRedraw()
		return "", nil
	case "index":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s index index"`, e.win.Path)
		}
		i, err := e.parseEntryIndex(args[0])
		if err != nil {
			return "", err
		}
		return strconv.Itoa(i), nil
	case "select":
		if len(args) == 3 && args[0] == "range" {
			from, err1 := e.parseEntryIndex(args[1])
			to, err2 := e.parseEntryIndex(args[2])
			if err1 != nil || err2 != nil {
				return "", fmt.Errorf("bad select range")
			}
			e.selFrom, e.selTo = from, to
			e.app.OwnSelection(e.win, func(*tk.Window) {
				e.selFrom = -1
				e.win.ScheduleRedraw()
			})
			e.win.ScheduleRedraw()
			return "", nil
		}
		if len(args) == 1 && args[0] == "clear" {
			e.selFrom = -1
			e.win.ScheduleRedraw()
			return "", nil
		}
		return "", fmt.Errorf("bad select option")
	}
	return "", fmt.Errorf("bad option %q for entry", sub)
}

// parseEntryIndex handles numeric indices, "end" and "insert".
func (e *Entry) parseEntryIndex(s string) (int, error) {
	switch s {
	case "end":
		return len(e.text), nil
	case "insert":
		return e.icursor, nil
	case "sel.first":
		if e.selFrom < 0 {
			return 0, fmt.Errorf("selection isn't in entry")
		}
		return e.selFrom, nil
	case "sel.last":
		if e.selFrom < 0 {
			return 0, fmt.Errorf("selection isn't in entry")
		}
		return e.selTo, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad entry index %q", s)
	}
	if n < 0 {
		n = 0
	}
	if n > len(e.text) {
		n = len(e.text)
	}
	return n, nil
}

// Redraw implements tk.Widget.
func (e *Entry) Redraw() {
	if e.win.Destroyed {
		return
	}
	e.clear(e.bg)
	bd := e.cv.GetInt("-borderwidth", 2)
	e.draw3DBorder(0, 0, e.win.Width, e.win.Height, bd, e.bg, e.cv.Get("-relief"))
	d := e.app.Disp
	x := bd + 3
	baseline := (e.win.Height+e.font.Ascent-e.font.Descent)/2 + e.font.Descent/2
	cw := e.font.TextWidth("0")
	// Selection highlight.
	if e.selFrom >= 0 && e.selFrom < e.selTo {
		selBG, _ := e.app.Color(e.cv.Get("-selectbackground"))
		gcSel := e.app.GC(selBG, selBG, 1, e.fontID())
		d.FillRectangle(e.win.XID, gcSel, x+e.selFrom*cw, baseline-e.font.Ascent,
			(e.selTo-e.selFrom)*cw, e.font.LineHeight())
	}
	gc := e.app.GC(e.fg, e.bg, 1, e.fontID())
	d.DrawString(e.win.XID, gc, x, baseline, e.text)
	// Insertion cursor.
	cx := x + e.icursor*cw
	d.FillRectangle(e.win.XID, gc, cx, baseline-e.font.Ascent, 1, e.font.LineHeight())
}
