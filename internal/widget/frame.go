package widget

import (
	"fmt"

	"repro/internal/tcl"
	"repro/internal/tk"
)

// Frame is a container widget: a rectangle with a background and an
// optional 3-D border, used to group and arrange other widgets. Toplevel
// is the same widget created as a top-level window.
type Frame struct {
	base
}

func frameSpecs() []tk.OptionSpec {
	specs := standardSpecs(DefBackground)
	return append(specs,
		tk.OptionSpec{Name: "-width", DBName: "width", DBClass: "Width", Default: "0"},
		tk.OptionSpec{Name: "-height", DBName: "height", DBClass: "Height", Default: "0"},
		tk.OptionSpec{Name: "-geometry", DBName: "geometry", DBClass: "Geometry", Default: ""},
	)
}

func registerFrame(app *tk.App) {
	create := func(top bool) tcl.CmdFunc {
		return func(in *tcl.Interp, args []string) (string, error) {
			if len(args) < 2 {
				return "", fmt.Errorf(`wrong # args: should be "%s pathName ?options?"`, args[0])
			}
			class := "Frame"
			if top {
				class = "Toplevel"
			}
			b, err := newBase(app, args[1], class, frameSpecs(), top)
			if err != nil {
				return "", err
			}
			f := &Frame{base: *b}
			f.win.Widget = f
			f.geomAndExposure()
			return f.install(f, args[2:])
		}
	}
	app.Interp.Register("frame", create(false))
	app.Interp.Register("toplevel", create(true))
}

// recompute implements subcommander.
func (f *Frame) recompute() error {
	if err := f.resolve(); err != nil {
		return err
	}
	bd := f.cv.GetInt("-borderwidth", 2)
	f.win.InternalBorder = bd
	w := f.cv.GetInt("-width", 0)
	h := f.cv.GetInt("-height", 0)
	// The old Tk -geometry option: "WxH".
	if g := f.cv.Get("-geometry"); g != "" {
		var gw, gh int
		if n, _ := fmt.Sscanf(g, "%dx%d", &gw, &gh); n == 2 {
			w, h = gw, gh
		} else {
			return fmt.Errorf("bad geometry %q", g)
		}
	}
	if w > 0 || h > 0 {
		f.win.GeometryRequest(max(w, 1), max(h, 1))
	}
	if f.win.TopLevel {
		f.win.Map()
	}
	f.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander; frames have no class-specific
// subcommands.
func (f *Frame) widgetCommand(sub string, args []string) (string, error) {
	return "", fmt.Errorf("bad option %q: must be configure", sub)
}

// Redraw implements tk.Widget.
func (f *Frame) Redraw() {
	f.clear(f.bg)
	f.draw3DBorder(0, 0, f.win.Width, f.win.Height,
		f.cv.GetInt("-borderwidth", 2), f.bg, f.cv.Get("-relief"))
}
