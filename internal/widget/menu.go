package widget

import (
	"fmt"
	"strconv"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xproto"
)

// Menu and Menubutton implement pull-down menus. A menu is a top-level
// window (ignored by the window manager) holding a column of entries;
// each entry carries a Tcl command, exactly like a button (§4). A
// menubutton posts its associated menu below itself when pressed;
// releasing or clicking over an entry invokes it.

type menuEntry struct {
	kind     string // "command", "checkbutton", "radiobutton", "separator"
	label    string
	command  string
	variable string
	onValue  string
	offValue string
	value    string
}

// Menu implements the Menu class.
type Menu struct {
	base
	entries []menuEntry
	active  int // highlighted entry, -1 none
	posted  bool
}

func menuSpecs() []tk.OptionSpec {
	specs := standardSpecs(DefBackground)
	for i := range specs {
		if specs[i].Name == "-relief" {
			specs[i].Default = "raised"
		}
	}
	return append(specs,
		tk.OptionSpec{Name: "-activebackground", DBName: "activeBackground", DBClass: "Foreground", Default: DefActiveBackground},
	)
}

func registerMenu(app *tk.App) {
	app.Interp.Register("menu", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "menu pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Menu", menuSpecs(), true)
		if err != nil {
			return "", err
		}
		m := &Menu{base: *b, active: -1}
		m.win.Widget = m
		m.geomAndExposure()
		m.bindBehaviour()
		// Menus are override-redirect: no WM decoration.
		app.Disp.Request(&xproto.ChangeWindowAttributesReq{
			Window: m.win.XID, Mask: xproto.AttrOverride, OverrideRedirect: true,
		})
		return m.install(m, args[2:])
	})
	registerMenubutton(app)
}

const menuEntryPad = 3

func (m *Menu) entryHeight() int { return m.font.LineHeight() + 2*menuEntryPad }

// entryAt maps a y coordinate within the menu to an entry index.
func (m *Menu) entryAt(y int) int {
	bd := m.cv.GetInt("-borderwidth", 2)
	i := (y - bd) / m.entryHeight()
	if i < 0 || i >= len(m.entries) {
		return -1
	}
	if m.entries[i].kind == "separator" {
		return -1
	}
	return i
}

func (m *Menu) bindBehaviour() {
	mask := xproto.ButtonPressMask | xproto.ButtonReleaseMask |
		xproto.PointerMotionMask | xproto.LeaveWindowMask
	m.win.AddEventHandler(mask, func(ev *xproto.Event) {
		switch int(ev.Type) {
		case xproto.MotionNotify:
			if i := m.entryAt(int(ev.Y)); i != m.active {
				m.active = i
				m.win.ScheduleRedraw()
			}
		case xproto.LeaveNotify:
			if m.active != -1 {
				m.active = -1
				m.win.ScheduleRedraw()
			}
		case xproto.ButtonPress, xproto.ButtonRelease:
			if int(ev.Type) == xproto.ButtonRelease {
				if i := m.entryAt(int(ev.Y)); i >= 0 {
					m.Unpost()
					m.InvokeEntry(i)
				}
			}
		}
	})
}

// Post displays the menu with its top-left corner at root coordinates.
func (m *Menu) Post(x, y int) {
	m.app.Disp.MoveWindow(m.win.XID, x, y)
	m.win.X, m.win.Y = x, y
	m.posted = true
	m.win.Map()
	m.app.Disp.RaiseWindow(m.win.XID)
	m.win.ScheduleRedraw()
}

// Unpost hides the menu.
func (m *Menu) Unpost() {
	m.posted = false
	m.active = -1
	m.win.Unmap()
}

// InvokeEntry runs an entry's action.
func (m *Menu) InvokeEntry(i int) {
	if i < 0 || i >= len(m.entries) {
		return
	}
	en := &m.entries[i]
	switch en.kind {
	case "checkbutton":
		cur, _ := m.app.Interp.GetGlobal(en.variable)
		if cur == en.onValue {
			_, _ = m.app.Interp.SetGlobal(en.variable, en.offValue)
		} else {
			_, _ = m.app.Interp.SetGlobal(en.variable, en.onValue)
		}
	case "radiobutton":
		_, _ = m.app.Interp.SetGlobal(en.variable, en.value)
	}
	m.eval(fmt.Sprintf("menu entry %d of %s", i, m.win.Path), en.command)
}

// recompute implements subcommander.
func (m *Menu) recompute() error {
	if err := m.resolve(); err != nil {
		return err
	}
	bd := m.cv.GetInt("-borderwidth", 2)
	maxW := 40
	for _, en := range m.entries {
		if w := m.font.TextWidth(en.label) + 24; w > maxW {
			maxW = w
		}
	}
	h := len(m.entries)*m.entryHeight() + 2*bd
	if h < 10 {
		h = 10
	}
	m.win.GeometryRequest(maxW+2*bd, h)
	m.app.Disp.ResizeWindow(m.win.XID, maxW+2*bd, h)
	m.win.Width, m.win.Height = maxW+2*bd, h
	m.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander.
func (m *Menu) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "add":
		if len(args) < 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s add type ?options?"`, m.win.Path)
		}
		en := menuEntry{kind: args[0], onValue: "1", offValue: "0"}
		switch en.kind {
		case "command", "checkbutton", "radiobutton", "separator":
		default:
			return "", fmt.Errorf("bad menu entry type %q", args[0])
		}
		rest := args[1:]
		if len(rest)%2 != 0 {
			return "", fmt.Errorf("value for %q missing", rest[len(rest)-1])
		}
		for i := 0; i < len(rest); i += 2 {
			switch rest[i] {
			case "-label":
				en.label = rest[i+1]
			case "-command":
				en.command = rest[i+1]
			case "-variable":
				en.variable = rest[i+1]
			case "-onvalue":
				en.onValue = rest[i+1]
			case "-offvalue":
				en.offValue = rest[i+1]
			case "-value":
				en.value = rest[i+1]
			default:
				return "", fmt.Errorf("unknown menu entry option %q", rest[i])
			}
		}
		m.entries = append(m.entries, en)
		return "", m.recompute()
	case "delete":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s delete index"`, m.win.Path)
		}
		i, err := parseIndex(args[0], len(m.entries)-1)
		if err != nil || i < 0 || i >= len(m.entries) {
			return "", fmt.Errorf("bad menu entry index %q", args[0])
		}
		m.entries = append(m.entries[:i], m.entries[i+1:]...)
		return "", m.recompute()
	case "entrycount":
		return strconv.Itoa(len(m.entries)), nil
	case "invoke":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s invoke index"`, m.win.Path)
		}
		i, err := parseIndex(args[0], len(m.entries)-1)
		if err != nil {
			return "", err
		}
		m.InvokeEntry(i)
		return "", nil
	case "activate":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s activate index"`, m.win.Path)
		}
		i, err := parseIndex(args[0], len(m.entries)-1)
		if err != nil {
			return "", err
		}
		m.active = i
		m.win.ScheduleRedraw()
		return "", nil
	case "post":
		if len(args) != 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s post x y"`, m.win.Path)
		}
		x, err1 := strconv.Atoi(args[0])
		y, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("expected integer coordinates")
		}
		m.Post(x, y)
		return "", nil
	case "unpost":
		m.Unpost()
		return "", nil
	case "entrylabel":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s entrylabel index"`, m.win.Path)
		}
		i, err := parseIndex(args[0], len(m.entries)-1)
		if err != nil || i < 0 || i >= len(m.entries) {
			return "", fmt.Errorf("bad menu entry index %q", args[0])
		}
		return m.entries[i].label, nil
	}
	return "", fmt.Errorf("bad option %q for menu", sub)
}

// Redraw implements tk.Widget.
func (m *Menu) Redraw() {
	if m.win.Destroyed {
		return
	}
	m.clear(m.bg)
	bd := m.cv.GetInt("-borderwidth", 2)
	m.draw3DBorder(0, 0, m.win.Width, m.win.Height, bd, m.bg, m.cv.Get("-relief"))
	d := m.app.Disp
	y := bd
	eh := m.entryHeight()
	for i, en := range m.entries {
		if en.kind == "separator" {
			gc := m.app.GC(shade(m.bg, 0.6), m.bg, 1, m.fontID())
			d.FillRectangle(m.win.XID, gc, bd+2, y+eh/2, m.win.Width-2*bd-4, 1)
			y += eh
			continue
		}
		bg := m.bg
		if i == m.active {
			if px, err := m.app.Color(m.cv.Get("-activebackground")); err == nil {
				bg = px
				gcA := m.app.GC(bg, bg, 1, m.fontID())
				d.FillRectangle(m.win.XID, gcA, bd, y, m.win.Width-2*bd, eh)
			}
		}
		// Indicator state for check/radio entries.
		label := en.label
		if en.kind == "checkbutton" || en.kind == "radiobutton" {
			cur, _ := m.app.Interp.GetGlobal(en.variable)
			on := (en.kind == "checkbutton" && cur == en.onValue) ||
				(en.kind == "radiobutton" && cur == en.value)
			if on {
				label = "* " + label
			} else {
				label = "  " + label
			}
		}
		gc := m.app.GC(m.fg, bg, 1, m.fontID())
		d.DrawString(m.win.XID, gc, bd+6, y+menuEntryPad+m.font.Ascent, label)
		y += eh
	}
}

// Menubutton implements the Menubutton class.
type Menubutton struct {
	base
	active bool
}

func menubuttonSpecs() []tk.OptionSpec {
	specs := standardSpecs(DefBackground)
	for i := range specs {
		if specs[i].Name == "-relief" {
			specs[i].Default = "raised"
		}
	}
	return append(specs,
		tk.OptionSpec{Name: "-text", DBName: "text", DBClass: "Text", Default: ""},
		tk.OptionSpec{Name: "-menu", DBName: "menu", DBClass: "Menu", Default: ""},
		tk.OptionSpec{Name: "-activebackground", DBName: "activeBackground", DBClass: "Foreground", Default: DefActiveBackground},
		tk.OptionSpec{Name: "-padx", DBName: "padX", DBClass: "Pad", Default: "4"},
		tk.OptionSpec{Name: "-pady", DBName: "padY", DBClass: "Pad", Default: "2"},
	)
}

func registerMenubutton(app *tk.App) {
	app.Interp.Register("menubutton", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "menubutton pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Menubutton", menubuttonSpecs(), false)
		if err != nil {
			return "", err
		}
		mb := &Menubutton{base: *b}
		mb.win.Widget = mb
		mb.geomAndExposure()
		mb.bindBehaviour()
		return mb.install(mb, args[2:])
	})
}

// menu resolves the associated Menu widget.
func (mb *Menubutton) menu() *Menu {
	path := mb.cv.Get("-menu")
	if path == "" {
		return nil
	}
	w, err := mb.app.NameToWindow(path)
	if err != nil {
		return nil
	}
	m, _ := w.Widget.(*Menu)
	return m
}

func (mb *Menubutton) bindBehaviour() {
	mask := xproto.EnterWindowMask | xproto.LeaveWindowMask |
		xproto.ButtonPressMask | xproto.ButtonReleaseMask
	mb.win.AddEventHandler(mask, func(ev *xproto.Event) {
		switch int(ev.Type) {
		case xproto.EnterNotify:
			mb.active = true
			mb.win.ScheduleRedraw()
		case xproto.LeaveNotify:
			mb.active = false
			mb.win.ScheduleRedraw()
		case xproto.ButtonPress:
			if ev.Detail != 1 {
				return
			}
			m := mb.menu()
			if m == nil {
				return
			}
			if m.posted {
				m.Unpost()
				return
			}
			rx, ry := mb.win.RootCoords()
			m.Post(rx, ry+mb.win.Height)
		case xproto.ButtonRelease:
			m := mb.menu()
			if m == nil || !m.posted {
				return
			}
			// Drag-release over the posted menu invokes the entry under
			// the pointer (classic pull-down behaviour under the
			// implicit grab).
			mx := int(ev.RootX) - m.win.X
			my := int(ev.RootY) - m.win.Y
			if mx >= 0 && my >= 0 && mx < m.win.Width && my < m.win.Height {
				if i := m.entryAt(my); i >= 0 {
					m.Unpost()
					m.InvokeEntry(i)
				}
			}
		}
	})
}

// recompute implements subcommander.
func (mb *Menubutton) recompute() error {
	if err := mb.resolve(); err != nil {
		return err
	}
	bd := mb.cv.GetInt("-borderwidth", 2)
	text := mb.cv.Get("-text")
	mb.win.GeometryRequest(
		mb.font.TextWidth(text)+2*mb.cv.GetInt("-padx", 4)+2*bd,
		mb.font.LineHeight()+2*mb.cv.GetInt("-pady", 2)+2*bd)
	mb.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander.
func (mb *Menubutton) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "post":
		if m := mb.menu(); m != nil {
			rx, ry := mb.win.RootCoords()
			m.Post(rx, ry+mb.win.Height)
		}
		return "", nil
	case "unpost":
		if m := mb.menu(); m != nil {
			m.Unpost()
		}
		return "", nil
	}
	return "", fmt.Errorf("bad option %q for menubutton", sub)
}

// Redraw implements tk.Widget.
func (mb *Menubutton) Redraw() {
	if mb.win.Destroyed {
		return
	}
	bg := mb.bg
	if mb.active {
		if px, err := mb.app.Color(mb.cv.Get("-activebackground")); err == nil {
			bg = px
		}
	}
	mb.clear(bg)
	bd := mb.cv.GetInt("-borderwidth", 2)
	mb.draw3DBorder(0, 0, mb.win.Width, mb.win.Height, bd, bg, mb.cv.Get("-relief"))
	mb.drawCenteredText(mb.cv.Get("-text"), mb.fg, bg)
}
