package widget

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xproto"
)

// Listbox implements the Listbox class: a scrollable list of text items
// with selection support. Its interface matches the paper's Figure 9
// usage: created with "-scroll {.scroll set}" so it keeps an associated
// scrollbar current, scrolled with ".list view 40" (the command the
// scrollbar synthesizes), filled with ".list insert end item", and read
// through the X selection ("selection get").
type Listbox struct {
	base

	items []string
	top   int // first visible item

	selFirst, selLast int // selected range, -1 when empty
	anchor            int
}

func listboxSpecs() []tk.OptionSpec {
	specs := standardSpecs(DefBackground)
	return append(specs,
		tk.OptionSpec{Name: "-scroll", DBName: "scrollCommand", DBClass: "ScrollCommand", Default: ""},
		tk.OptionSpec{Name: "-yscroll", Synonym: "-scroll"},
		tk.OptionSpec{Name: "-geometry", DBName: "geometry", DBClass: "Geometry", Default: "15x10"},
		tk.OptionSpec{Name: "-selectbackground", DBName: "selectBackground", DBClass: "Foreground", Default: DefSelectBackground},
	)
}

func registerListbox(app *tk.App) {
	app.Interp.Register("listbox", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "listbox pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Listbox", listboxSpecs(), false)
		if err != nil {
			return "", err
		}
		lb := &Listbox{base: *b, selFirst: -1, selLast: -1}
		lb.win.Widget = lb
		lb.geomAndExposure()
		lb.bindBehaviour()
		// A resize changes how many lines are visible; keep the attached
		// scrollbar current.
		lb.win.AddEventHandler(xproto.StructureNotifyMask, func(ev *xproto.Event) {
			if ev.Type == xproto.ConfigureNotify {
				lb.updateScrollbar()
			}
		})
		// The selection handler (§3.6): returns the selected items, one
		// per line.
		app.SetSelectionHandler(lb.win, func() string {
			return strings.Join(lb.SelectedItems(), "\n")
		})
		return lb.install(lb, args[2:])
	})
}

// linesVisible returns how many items fit in the window.
func (lb *Listbox) linesVisible() int {
	bd := lb.cv.GetInt("-borderwidth", 2)
	lh := lb.font.LineHeight() + 2
	n := (lb.win.Height - 2*bd) / lh
	if n < 1 {
		n = 1
	}
	return n
}

// indexAt converts a y pixel coordinate to an item index (clamped).
func (lb *Listbox) indexAt(y int) int {
	bd := lb.cv.GetInt("-borderwidth", 2)
	lh := lb.font.LineHeight() + 2
	i := lb.top + (y-bd)/lh
	if i < 0 {
		i = 0
	}
	if i >= len(lb.items) {
		i = len(lb.items) - 1
	}
	return i
}

func (lb *Listbox) bindBehaviour() {
	mask := xproto.ButtonPressMask | xproto.ButtonMotionMask
	lb.win.AddEventHandler(mask, func(ev *xproto.Event) {
		if len(lb.items) == 0 {
			return
		}
		switch int(ev.Type) {
		case xproto.ButtonPress:
			if ev.Detail != 1 {
				return
			}
			i := lb.indexAt(int(ev.Y))
			if ev.State&xproto.ShiftMask != 0 && lb.selFirst >= 0 {
				lb.extendTo(i)
			} else {
				lb.anchor = i
				lb.selFirst, lb.selLast = i, i
				lb.claimSelection()
			}
			lb.win.ScheduleRedraw()
		case xproto.MotionNotify:
			if ev.State&xproto.Button1Mask != 0 {
				lb.extendTo(lb.indexAt(int(ev.Y)))
				lb.win.ScheduleRedraw()
			}
		}
	})
}

func (lb *Listbox) extendTo(i int) {
	if i < lb.anchor {
		lb.selFirst, lb.selLast = i, lb.anchor
	} else {
		lb.selFirst, lb.selLast = lb.anchor, i
	}
	lb.claimSelection()
}

func (lb *Listbox) claimSelection() {
	lb.app.OwnSelection(lb.win, func(*tk.Window) {
		// Lost the selection to someone else: deselect.
		lb.selFirst, lb.selLast = -1, -1
		lb.win.ScheduleRedraw()
	})
}

// SelectedItems returns the currently selected items.
func (lb *Listbox) SelectedItems() []string {
	if lb.selFirst < 0 {
		return nil
	}
	first, last := lb.selFirst, lb.selLast
	if first < 0 {
		first = 0
	}
	if last >= len(lb.items) {
		last = len(lb.items) - 1
	}
	out := make([]string, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, lb.items[i])
	}
	return out
}

// updateScrollbar tells the associated scrollbar about the current view
// (the "-scroll {.scroll set}" linkage of Figure 9).
func (lb *Listbox) updateScrollbar() {
	cmd := lb.cv.Get("-scroll")
	if strings.TrimSpace(cmd) == "" {
		return
	}
	window := lb.linesVisible()
	last := lb.top + window - 1
	if last >= len(lb.items) {
		last = len(lb.items) - 1
	}
	lb.eval("listbox scroll command", fmt.Sprintf("%s %d %d %d %d",
		cmd, len(lb.items), window, lb.top, last))
}

// View scrolls so that item index appears at the top (the ".list view
// 40" command of §4).
func (lb *Listbox) View(index int) {
	maxTop := len(lb.items) - lb.linesVisible()
	if maxTop < 0 {
		maxTop = 0
	}
	if index > maxTop {
		index = maxTop
	}
	if index < 0 {
		index = 0
	}
	lb.top = index
	lb.updateScrollbar()
	lb.win.ScheduleRedraw()
}

// recompute implements subcommander.
func (lb *Listbox) recompute() error {
	if err := lb.resolve(); err != nil {
		return err
	}
	cols, rows := 15, 10
	if g := lb.cv.Get("-geometry"); g != "" {
		if n, _ := fmt.Sscanf(g, "%dx%d", &cols, &rows); n != 2 {
			return fmt.Errorf("bad geometry %q: expected WIDTHxHEIGHT", g)
		}
	}
	bd := lb.cv.GetInt("-borderwidth", 2)
	w := cols*lb.font.TextWidth("0") + 2*bd + 6
	h := rows*(lb.font.LineHeight()+2) + 2*bd
	lb.win.GeometryRequest(w, h)
	lb.win.ScheduleRedraw()
	lb.updateScrollbar()
	return nil
}

// widgetCommand implements subcommander.
func (lb *Listbox) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "insert":
		if len(args) < 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s insert index ?element ...?"`, lb.win.Path)
		}
		i, err := parseIndex(args[0], len(lb.items))
		if err != nil {
			return "", err
		}
		if i < 0 {
			i = 0
		}
		if i > len(lb.items) {
			i = len(lb.items)
		}
		items := append([]string{}, lb.items[:i]...)
		items = append(items, args[1:]...)
		items = append(items, lb.items[i:]...)
		lb.items = items
		lb.updateScrollbar()
		lb.win.ScheduleRedraw()
		return "", nil
	case "delete":
		if len(args) < 1 || len(args) > 2 {
			return "", fmt.Errorf(`wrong # args: should be "%s delete first ?last?"`, lb.win.Path)
		}
		first, err := parseIndex(args[0], len(lb.items)-1)
		if err != nil {
			return "", err
		}
		last := first
		if len(args) == 2 {
			if last, err = parseIndex(args[1], len(lb.items)-1); err != nil {
				return "", err
			}
		}
		if first < 0 {
			first = 0
		}
		if last >= len(lb.items) {
			last = len(lb.items) - 1
		}
		if first <= last {
			lb.items = append(lb.items[:first], lb.items[last+1:]...)
			lb.selFirst, lb.selLast = -1, -1
			lb.View(lb.top)
		}
		return "", nil
	case "get":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s get index"`, lb.win.Path)
		}
		i, err := parseIndex(args[0], len(lb.items)-1)
		if err != nil {
			return "", err
		}
		if i < 0 || i >= len(lb.items) {
			return "", fmt.Errorf("index %q out of range", args[0])
		}
		return lb.items[i], nil
	case "size":
		return strconv.Itoa(len(lb.items)), nil
	case "view", "yview":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s %s index"`, lb.win.Path, sub)
		}
		i, err := parseIndex(args[0], len(lb.items)-1)
		if err != nil {
			return "", err
		}
		lb.View(i)
		return "", nil
	case "nearest":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s nearest y"`, lb.win.Path)
		}
		y, err := strconv.Atoi(args[0])
		if err != nil {
			return "", fmt.Errorf("expected integer but got %q", args[0])
		}
		return strconv.Itoa(lb.indexAt(y)), nil
	case "curselection":
		var out []string
		if lb.selFirst >= 0 {
			for i := lb.selFirst; i <= lb.selLast && i < len(lb.items); i++ {
				out = append(out, strconv.Itoa(i))
			}
		}
		return strings.Join(out, " "), nil
	case "select":
		if len(args) < 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s select option ?index?"`, lb.win.Path)
		}
		switch args[0] {
		case "clear":
			lb.selFirst, lb.selLast = -1, -1
			lb.win.ScheduleRedraw()
			return "", nil
		case "from", "set":
			if len(args) != 2 {
				return "", fmt.Errorf("select %s needs an index", args[0])
			}
			i, err := parseIndex(args[1], len(lb.items)-1)
			if err != nil {
				return "", err
			}
			lb.anchor = i
			lb.selFirst, lb.selLast = i, i
			lb.claimSelection()
			lb.win.ScheduleRedraw()
			return "", nil
		case "to":
			if len(args) != 2 {
				return "", fmt.Errorf("select to needs an index")
			}
			i, err := parseIndex(args[1], len(lb.items)-1)
			if err != nil {
				return "", err
			}
			lb.extendTo(i)
			lb.win.ScheduleRedraw()
			return "", nil
		}
		return "", fmt.Errorf("bad select option %q", args[0])
	}
	return "", fmt.Errorf("bad option %q for listbox", sub)
}

// Redraw implements tk.Widget.
func (lb *Listbox) Redraw() {
	if lb.win.Destroyed {
		return
	}
	lb.clear(lb.bg)
	bd := lb.cv.GetInt("-borderwidth", 2)
	lh := lb.font.LineHeight() + 2
	selBG := lb.bg
	if px, err := lb.app.Color(lb.cv.Get("-selectbackground")); err == nil {
		selBG = px
	}
	d := lb.app.Disp
	visible := lb.linesVisible()
	for row := 0; row < visible; row++ {
		i := lb.top + row
		if i >= len(lb.items) {
			break
		}
		y := bd + row*lh
		bg := lb.bg
		if lb.selFirst >= 0 && i >= lb.selFirst && i <= lb.selLast {
			bg = selBG
			gcSel := lb.app.GC(bg, bg, 1, lb.fontID())
			d.FillRectangle(lb.win.XID, gcSel, bd, y, lb.win.Width-2*bd, lh)
		}
		gc := lb.app.GC(lb.fg, bg, 1, lb.fontID())
		d.DrawString(lb.win.XID, gc, bd+3, y+lb.font.Ascent+1, lb.items[i])
	}
	lb.draw3DBorder(0, 0, lb.win.Width, lb.win.Height, bd, lb.bg, lb.cv.Get("-relief"))
}
