package widget_test

import (
	"strings"
	"testing"
)

func TestCanvasCreateAndQuery(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`canvas .c -width 200 -height 150`)
	app.MustEval(`pack append . .c {top}`)
	app.Update()

	id1 := app.MustEval(`.c create rectangle 10 10 50 40 -fill red`)
	id2 := app.MustEval(`.c create line 0 0 100 100 -width 2`)
	id3 := app.MustEval(`.c create text 60 60 -text "hello" -tags {label greeting}`)
	if id1 != "1" || id2 != "2" || id3 != "3" {
		t.Fatalf("ids = %s %s %s", id1, id2, id3)
	}
	if got := app.MustEval(`.c coords 1`); got != "10 10 50 40" {
		t.Fatalf("coords = %q", got)
	}
	if got := app.MustEval(`.c gettags 3`); got != "label greeting" {
		t.Fatalf("gettags = %q", got)
	}
	if got := app.MustEval(`.c find withtag label`); got != "3" {
		t.Fatalf("find withtag = %q", got)
	}
	if got := app.MustEval(`.c find closest 12 12`); got != "1" {
		t.Fatalf("find closest = %q", got)
	}
}

func TestCanvasMoveAndDelete(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`canvas .c`)
	app.MustEval(`pack append . .c {top}`)
	app.MustEval(`.c create rectangle 10 10 30 30 -tags box`)
	app.MustEval(`.c move box 5 -3`)
	if got := app.MustEval(`.c coords box`); got != "15 7 35 27" {
		t.Fatalf("after move: %q", got)
	}
	app.MustEval(`.c coords box 0 0 10 10`)
	if got := app.MustEval(`.c coords box`); got != "0 0 10 10" {
		t.Fatalf("after coords set: %q", got)
	}
	app.MustEval(`.c delete box`)
	if got := app.MustEval(`.c find withtag all`); got != "" {
		t.Fatalf("after delete: %q", got)
	}
}

func TestCanvasItemConfigure(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`canvas .c`)
	app.MustEval(`.c create oval 10 10 60 40 -fill blue -tags dot`)
	app.MustEval(`.c itemconfigure dot -fill green -width 3`)
	// Unknown options and bad colors error.
	if _, err := app.Eval(`.c itemconfigure dot -bogus 1`); err == nil {
		t.Fatal("bogus item option should fail")
	}
	if _, err := app.Eval(`.c itemconfigure dot -fill NotAColor`); err == nil {
		t.Fatal("bad fill color should fail")
	}
}

func TestCanvasItemBindings(t *testing.T) {
	// The §6 hypertext mechanism: Tcl commands associated with pieces of
	// text or graphics, executed on click.
	app, _ := newApp(t)
	app.MustEval(`canvas .c -width 200 -height 150`)
	app.MustEval(`pack append . .c {top}`)
	app.MustEval(`.c create text 20 20 -text "a link" -tags link`)
	app.MustEval(`.c bind link <Button-1> {set followed "at %x %y"}`)
	app.Update()

	w, _ := app.NameToWindow(".c")
	rx, ry := w.RootCoords()
	// Click on the text item.
	click(app, rx+25, ry+25)
	got := app.MustEval(`set followed`)
	if !strings.HasPrefix(got, "at ") {
		t.Fatalf("binding result = %q", got)
	}
	// Clicking empty canvas space does nothing.
	app.MustEval(`set followed none`)
	click(app, rx+150, ry+120)
	if got := app.MustEval(`set followed`); got != "none" {
		t.Fatalf("empty click fired binding: %q", got)
	}
	// Query and delete the binding.
	if app.MustEval(`.c bind link <Button-1>`) == "" {
		t.Fatal("binding query")
	}
	app.MustEval(`.c bind link <Button-1> {}`)
	if app.MustEval(`.c bind link <Button-1>`) != "" {
		t.Fatal("binding delete")
	}
}

func TestCanvasEnterLeaveItems(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`canvas .c -width 200 -height 150`)
	app.MustEval(`pack append . .c {top}`)
	app.MustEval(`.c create rectangle 10 10 50 50 -tags r`)
	app.MustEval(`set log {}`)
	app.MustEval(`.c bind r <Enter> {lappend log enter}`)
	app.MustEval(`.c bind r <Leave> {lappend log leave}`)
	app.Update()
	w, _ := app.NameToWindow(".c")
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+20, ry+20) // onto the item
	app.Update()
	app.Disp.WarpPointer(rx+150, ry+100) // off the item, still in canvas
	app.Update()
	if got := app.MustEval(`set log`); got != "enter leave" {
		t.Fatalf("enter/leave log = %q", got)
	}
}

func TestCanvasRaise(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`canvas .c`)
	app.MustEval(`pack append . .c {top}`)
	app.MustEval(`.c create rectangle 10 10 50 50 -tags bottom`)
	app.MustEval(`.c create rectangle 10 10 50 50 -tags top`)
	app.Update()
	// Topmost item at a point wins for picking; raise changes it.
	if got := app.MustEval(`.c find closest 20 20`); got != "1" {
		// closest uses centers; both tie, first wins.
		t.Logf("closest = %s", got)
	}
	app.MustEval(`set hit {}`)
	app.MustEval(`.c bind bottom <Button-1> {set hit bottom}`)
	app.MustEval(`.c bind top <Button-1> {set hit top}`)
	app.Update()
	w, _ := app.NameToWindow(".c")
	rx, ry := w.RootCoords()
	click(app, rx+20, ry+20)
	if got := app.MustEval(`set hit`); got != "top" {
		t.Fatalf("topmost pick = %q", got)
	}
	app.MustEval(`.c raise bottom`)
	click(app, rx+20, ry+20)
	if got := app.MustEval(`set hit`); got != "bottom" {
		t.Fatalf("after raise, pick = %q", got)
	}
}

func TestCanvasRendering(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`canvas .c -width 100 -height 100 -background white`)
	app.MustEval(`pack append . .c {top}`)
	app.MustEval(`.c create rectangle 20 20 80 80 -fill red`)
	app.Update()
	shot, err := app.Disp.Screenshot(app.Main.XID)
	if err != nil {
		t.Fatal(err)
	}
	red := 0
	for i := 0; i+2 < len(shot.Pixels); i += 3 {
		if shot.Pixels[i] == 0xff && shot.Pixels[i+1] == 0 && shot.Pixels[i+2] == 0 {
			red++
		}
	}
	if red < 3000 { // 60x60 = 3600 expected
		t.Fatalf("rectangle rendered %d red pixels", red)
	}
}

func TestCanvasErrors(t *testing.T) {
	app, _ := newApp(t)
	app.MustEval(`canvas .c`)
	for _, bad := range []string{
		`.c create hexagon 1 2 3 4`,
		`.c create rectangle 1 2 3`,
		`.c create text 1`,
		`.c create polygon 1 2 3 4`,
		`.c create line one two`,
		`.c move all x y`,
		`.c nosuchsubcommand`,
	} {
		if _, err := app.Eval(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}
