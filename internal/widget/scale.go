package widget

import (
	"fmt"
	"strconv"

	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/xproto"
)

// Scale implements the Scale class: a slider for selecting an integer in
// a range; manipulating it evaluates the -command with the value
// appended, like all Tk widget actions (§4).
type Scale struct {
	base
	value    int
	dragging bool
}

func scaleSpecs() []tk.OptionSpec {
	specs := standardSpecs(DefBackground)
	return append(specs,
		tk.OptionSpec{Name: "-command", DBName: "command", DBClass: "Command", Default: ""},
		tk.OptionSpec{Name: "-from", DBName: "from", DBClass: "From", Default: "0"},
		tk.OptionSpec{Name: "-to", DBName: "to", DBClass: "To", Default: "100"},
		tk.OptionSpec{Name: "-length", DBName: "length", DBClass: "Length", Default: "100"},
		tk.OptionSpec{Name: "-width", DBName: "width", DBClass: "Width", Default: "15"},
		tk.OptionSpec{Name: "-orient", DBName: "orient", DBClass: "Orient", Default: "horizontal"},
		tk.OptionSpec{Name: "-label", DBName: "label", DBClass: "Label", Default: ""},
		tk.OptionSpec{Name: "-showvalue", DBName: "showValue", DBClass: "ShowValue", Default: "1"},
		tk.OptionSpec{Name: "-sliderlength", DBName: "sliderLength", DBClass: "SliderLength", Default: "25"},
	)
}

func registerScale(app *tk.App) {
	app.Interp.Register("scale", func(in *tcl.Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", fmt.Errorf(`wrong # args: should be "scale pathName ?options?"`)
		}
		b, err := newBase(app, args[1], "Scale", scaleSpecs(), false)
		if err != nil {
			return "", err
		}
		s := &Scale{base: *b}
		s.win.Widget = s
		s.geomAndExposure()
		s.bindBehaviour()
		return s.install(s, args[2:])
	})
}

func (s *Scale) horizontal() bool { return s.cv.Get("-orient") != "vertical" }

func (s *Scale) from() int { return s.cv.GetInt("-from", 0) }
func (s *Scale) to() int   { return s.cv.GetInt("-to", 100) }

// valueAt converts a pixel coordinate along the axis to a value.
func (s *Scale) valueAt(pos int) int {
	bd := s.cv.GetInt("-borderwidth", 2)
	sl := s.cv.GetInt("-sliderlength", 25)
	length := s.win.Width
	if !s.horizontal() {
		length = s.win.Height
	}
	span := length - 2*bd - sl
	if span < 1 {
		span = 1
	}
	f, t := s.from(), s.to()
	v := f + (pos-bd-sl/2)*(t-f)/span
	if t > f {
		if v < f {
			v = f
		}
		if v > t {
			v = t
		}
	} else {
		if v > f {
			v = f
		}
		if v < t {
			v = t
		}
	}
	return v
}

func (s *Scale) bindBehaviour() {
	mask := xproto.ButtonPressMask | xproto.ButtonReleaseMask | xproto.ButtonMotionMask
	s.win.AddEventHandler(mask, func(ev *xproto.Event) {
		pos := int(ev.X)
		if !s.horizontal() {
			pos = int(ev.Y)
		}
		switch int(ev.Type) {
		case xproto.ButtonPress:
			if ev.Detail == 1 {
				s.dragging = true
				s.Set(s.valueAt(pos))
			}
		case xproto.MotionNotify:
			if s.dragging {
				s.Set(s.valueAt(pos))
			}
		case xproto.ButtonRelease:
			if ev.Detail == 1 {
				s.dragging = false
			}
		}
	})
}

// Set assigns the scale's value, redraws, and runs the -command.
func (s *Scale) Set(v int) {
	if v == s.value {
		return
	}
	s.value = v
	s.win.ScheduleRedraw()
	if cmd := s.cv.Get("-command"); cmd != "" {
		s.eval("scale command", cmd+" "+strconv.Itoa(v))
	}
}

// recompute implements subcommander.
func (s *Scale) recompute() error {
	if err := s.resolve(); err != nil {
		return err
	}
	length := s.cv.GetInt("-length", 100)
	width := s.cv.GetInt("-width", 15)
	extra := 0
	if s.cv.GetBool("-showvalue") {
		extra += s.font.LineHeight()
	}
	if s.cv.Get("-label") != "" {
		extra += s.font.LineHeight()
	}
	bd := s.cv.GetInt("-borderwidth", 2)
	if s.horizontal() {
		s.win.GeometryRequest(length, width+extra+2*bd)
	} else {
		s.win.GeometryRequest(width+extra+2*bd, length)
	}
	s.win.ScheduleRedraw()
	return nil
}

// widgetCommand implements subcommander.
func (s *Scale) widgetCommand(sub string, args []string) (string, error) {
	switch sub {
	case "set":
		if len(args) != 1 {
			return "", fmt.Errorf(`wrong # args: should be "%s set value"`, s.win.Path)
		}
		v, err := strconv.Atoi(args[0])
		if err != nil {
			return "", fmt.Errorf("expected integer but got %q", args[0])
		}
		s.Set(v)
		return "", nil
	case "get":
		return strconv.Itoa(s.value), nil
	}
	return "", fmt.Errorf("bad option %q: must be set, get, or configure", sub)
}

// Redraw implements tk.Widget.
func (s *Scale) Redraw() {
	if s.win.Destroyed {
		return
	}
	s.clear(s.bg)
	bd := s.cv.GetInt("-borderwidth", 2)
	sl := s.cv.GetInt("-sliderlength", 25)
	width := s.cv.GetInt("-width", 15)
	d := s.app.Disp
	trough := shade(s.bg, 0.85)
	gcTrough := s.app.GC(trough, s.bg, 1, s.fontID())
	gcSlider := s.app.GC(shade(s.bg, 1.15), s.bg, 1, s.fontID())
	f, t := s.from(), s.to()
	span := t - f
	if span == 0 {
		span = 1
	}
	y := bd
	if s.cv.Get("-label") != "" {
		gc := s.app.GC(s.fg, s.bg, 1, s.fontID())
		d.DrawString(s.win.XID, gc, bd+2, y+s.font.Ascent, s.cv.Get("-label"))
		y += s.font.LineHeight()
	}
	if s.horizontal() {
		troughLen := s.win.Width - 2*bd
		d.FillRectangle(s.win.XID, gcTrough, bd, y, troughLen, width)
		sliderX := bd + (s.value-f)*(troughLen-sl)/span
		d.FillRectangle(s.win.XID, gcSlider, sliderX, y, sl, width)
		s.draw3DBorder(sliderX, y, sl, width, 2, shade(s.bg, 1.15), "raised")
		if s.cv.GetBool("-showvalue") {
			gc := s.app.GC(s.fg, s.bg, 1, s.fontID())
			label := strconv.Itoa(s.value)
			d.DrawString(s.win.XID, gc,
				sliderX+(sl-s.font.TextWidth(label))/2,
				y+width+s.font.Ascent, label)
		}
	} else {
		troughLen := s.win.Height - 2*bd
		d.FillRectangle(s.win.XID, gcTrough, bd, bd, width, troughLen)
		sliderY := bd + (s.value-f)*(troughLen-sl)/span
		d.FillRectangle(s.win.XID, gcSlider, bd, sliderY, width, sl)
		s.draw3DBorder(bd, sliderY, width, sl, 2, shade(s.bg, 1.15), "raised")
		if s.cv.GetBool("-showvalue") {
			gc := s.app.GC(s.fg, s.bg, 1, s.fontID())
			d.DrawString(s.win.XID, gc, bd+width+3, sliderY+s.font.Ascent, strconv.Itoa(s.value))
		}
	}
}
