package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Scenario describes one deterministic fault-injection regime. The zero
// value injects nothing; every field enables one fault kind. See
// docs/fault-injection.md for the full reference.
type Scenario struct {
	// Name labels the scenario in errors and harness output.
	Name string
	// Seed drives both per-direction random streams; the same seed
	// replays the same fault decisions.
	Seed int64

	// Jitter delays a read or write by a uniform duration in
	// [0, Jitter), with probability JitterProb per operation.
	Jitter     time.Duration
	JitterProb float64

	// ShortWriteProb is the probability that a Write is torn into two
	// underlying wire writes at a random byte boundary, so the peer
	// sees a segment boundary mid-frame.
	ShortWriteProb float64

	// ShortReadProb is the probability that a Read is limited to a
	// random prefix of the caller's buffer.
	ShortReadProb float64

	// CorruptWriteProb / CorruptReadProb are per-operation probabilities
	// of flipping one random bit in the outgoing or incoming bytes.
	CorruptWriteProb float64
	CorruptReadProb  float64

	// KillAfterRequests closes the connection once N complete frames
	// have crossed the write direction (requests, for a client-side
	// wrapper). KillAfterBytes closes it after N payload bytes,
	// delivering the truncated prefix first — a torn frame.
	KillAfterRequests int
	KillAfterBytes    int64

	// StallEvery / StallDur: every Nth read blocks for StallDur before
	// touching the wire — a one-way stall (the peer's writes still
	// flow; ours do too).
	StallEvery int
	StallDur   time.Duration

	// ServerSide marks a wrapper layered under xserver instead of
	// xclient: outgoing frames then carry the 1-byte server-to-client
	// header rather than the 2-byte opcode header (frame counting for
	// KillAfterRequests needs to know).
	ServerSide bool
}

// headerBytes returns the frame-header width for the write direction.
func (sc Scenario) headerBytes() int {
	if sc.ServerSide {
		return 1
	}
	return 2
}

// Active reports whether the scenario injects any faults at all.
func (sc Scenario) Active() bool {
	return (sc.Jitter > 0 && sc.JitterProb > 0) ||
		sc.ShortWriteProb > 0 || sc.ShortReadProb > 0 ||
		sc.CorruptWriteProb > 0 || sc.CorruptReadProb > 0 ||
		sc.KillAfterRequests > 0 || sc.KillAfterBytes > 0 ||
		(sc.StallEvery > 0 && sc.StallDur > 0)
}

// String renders the scenario compactly (its name, or the spec shape).
func (sc Scenario) String() string {
	if sc.Name != "" {
		return sc.Name
	}
	return "scenario"
}

// ParseScenario builds a Scenario from a comma-separated key=value spec
// (the xsimd -fault flag syntax), e.g.
//
//	seed=42,jitter=2ms,jitterprob=0.5,shortwrite=0.3,corruptread=0.01,killreq=500
//
// Keys: seed, jitter (duration), jitterprob, shortwrite, shortread,
// corruptwrite, corruptread (probabilities in [0,1]), killreq,
// killbytes, stallevery (counts), stalldur (duration), server (bool).
func ParseScenario(spec string) (Scenario, error) {
	// jitterprob defaults to 1 so "jitter=2ms" alone means every op.
	sc := Scenario{Name: spec, JitterProb: 1}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return sc, fmt.Errorf("fault: bad scenario element %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			sc.Seed, err = strconv.ParseInt(val, 10, 64)
		case "jitter":
			sc.Jitter, err = time.ParseDuration(val)
		case "jitterprob":
			sc.JitterProb, err = parseProb(val)
		case "shortwrite":
			sc.ShortWriteProb, err = parseProb(val)
		case "shortread":
			sc.ShortReadProb, err = parseProb(val)
		case "corruptwrite":
			sc.CorruptWriteProb, err = parseProb(val)
		case "corruptread":
			sc.CorruptReadProb, err = parseProb(val)
		case "killreq":
			sc.KillAfterRequests, err = strconv.Atoi(val)
		case "killbytes":
			sc.KillAfterBytes, err = strconv.ParseInt(val, 10, 64)
		case "stallevery":
			sc.StallEvery, err = strconv.Atoi(val)
		case "stalldur":
			sc.StallDur, err = time.ParseDuration(val)
		case "server":
			sc.ServerSide, err = strconv.ParseBool(val)
		default:
			return sc, fmt.Errorf("fault: unknown scenario key %q", key)
		}
		if err != nil {
			return sc, fmt.Errorf("fault: bad value for %q: %v", key, err)
		}
	}
	return sc, nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}
