package fault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// chat pushes msg through a wrapped pipe and returns what the far end
// received (reading until the expected size or the connection dies).
func chat(t *testing.T, sc Scenario, msg []byte) []byte {
	t.Helper()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := Wrap(a, sc, nil)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 0, len(msg))
		tmp := make([]byte, 64)
		for len(buf) < len(msg) {
			n, err := b.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		got <- buf
	}()
	fc.Write(msg)
	select {
	case out := <-got:
		return out
	case <-time.After(5 * time.Second):
		t.Fatal("far end never received the payload")
		return nil
	}
}

// TestPassThrough: a zero scenario injects nothing and the bytes arrive
// intact.
func TestPassThrough(t *testing.T) {
	msg := []byte("hello from the client side")
	sc := Scenario{Name: "none"}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := Wrap(a, sc, nil)
	go fc.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
	if fc.Total() != 0 {
		t.Fatalf("zero scenario injected %d faults", fc.Total())
	}
}

// TestShortWritePreservesBytes: torn writes still deliver every byte in
// order.
func TestShortWritePreservesBytes(t *testing.T) {
	msg := bytes.Repeat([]byte("0123456789"), 20)
	sc := Scenario{Name: "tear", Seed: 7, ShortWriteProb: 1}
	got := chat(t, sc, msg)
	if !bytes.Equal(got, msg) {
		t.Fatalf("short writes corrupted the stream: got %d bytes", len(got))
	}
}

// TestShortReadPreservesBytes: shortened reads never drop bytes.
func TestShortReadPreservesBytes(t *testing.T) {
	msg := bytes.Repeat([]byte("abcdefgh"), 25)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := Wrap(a, Scenario{Name: "shortread", Seed: 3, ShortReadProb: 1}, nil)
	go func() {
		b.Write(msg)
		b.Close()
	}()
	var buf []byte
	tmp := make([]byte, 64)
	for {
		n, err := fc.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("short reads corrupted the stream: got %d/%d bytes", len(buf), len(msg))
	}
	if fc.Metrics().Counter(CtrShortRead).Value() == 0 {
		t.Fatal("no short reads counted despite probability 1")
	}
}

// TestCorruptWriteFlipsExactlyOneBit per corrupted write.
func TestCorruptWriteFlipsOneBit(t *testing.T) {
	msg := bytes.Repeat([]byte{0}, 100)
	sc := Scenario{Name: "corrupt", Seed: 11, CorruptWriteProb: 1}
	got := chat(t, sc, msg)
	ones := 0
	for _, by := range got {
		for ; by != 0; by &= by - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d", ones)
	}
}

// frame builds one client→server frame: [u16 op][u32 len][payload].
func frame(op uint16, payload []byte) []byte {
	n := len(payload)
	out := []byte{byte(op >> 8), byte(op), byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
	return append(out, payload...)
}

// TestKillAfterRequests counts complete frames across arbitrary write
// chunking and kills on the boundary.
func TestKillAfterRequests(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go io.Copy(io.Discard, b)

	fc := Wrap(a, Scenario{Name: "kill3", KillAfterRequests: 3}, nil)
	buf := append(frame(1, []byte("aa")), frame(2, nil)...)
	if _, err := fc.Write(buf); err != nil {
		t.Fatalf("first two frames: %v", err)
	}
	// Third frame split across two writes: the kill fires on the write
	// that completes it.
	f3 := frame(3, []byte("zzzz"))
	if _, err := fc.Write(f3[:4]); err != nil {
		t.Fatalf("partial frame: %v", err)
	}
	if _, err := fc.Write(f3[4:]); err == nil {
		t.Fatal("completing frame 3 should kill the connection")
	}
	if !fc.Killed() {
		t.Fatal("Killed() should report true")
	}
	if _, err := fc.Write([]byte("more")); err == nil {
		t.Fatal("writes after kill must fail")
	}
	if fc.Metrics().Counter(CtrKill).Value() != 1 {
		t.Fatalf("kill counter = %d", fc.Metrics().Counter(CtrKill).Value())
	}
}

// TestKillAfterBytesTruncates: the killing write delivers only the
// allowed prefix — a torn frame for the peer.
func TestKillAfterBytesTruncates(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	recv := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		recv <- buf
	}()
	fc := Wrap(a, Scenario{Name: "kb", KillAfterBytes: 10}, nil)
	if _, err := fc.Write(bytes.Repeat([]byte("x"), 25)); err == nil {
		t.Fatal("write crossing the byte budget should fail")
	}
	got := <-recv
	if len(got) != 10 {
		t.Fatalf("peer received %d bytes, want the 10-byte truncated prefix", len(got))
	}
}

// TestDeterminism: the same seed injects the same faults for the same
// traffic; a different seed (almost surely) differs.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) map[string]uint64 {
		sc := Scenario{Name: "det", Seed: seed, ShortWriteProb: 0.5, CorruptWriteProb: 0.3}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go io.Copy(io.Discard, b)
		fc := Wrap(a, sc, nil)
		for i := 0; i < 40; i++ {
			fc.Write(frame(uint16(i), []byte("payload")))
		}
		return fc.Metrics().Counters()
	}
	first := run(42)
	second := run(42)
	for name, v := range first {
		if second[name] != v {
			t.Fatalf("seed 42 not deterministic: %s %d vs %d", name, v, second[name])
		}
	}
	if first[CtrShortWrite] == 0 && first[CtrCorruptWrite] == 0 {
		t.Fatal("probabilistic scenario injected nothing in 40 writes")
	}
}

// TestAccounting: the per-kind counters sum to Total, always.
func TestAccounting(t *testing.T) {
	sc := Scenario{
		Name: "mix", Seed: 5,
		Jitter: time.Microsecond, JitterProb: 0.5,
		ShortWriteProb: 0.5, ShortReadProb: 0.5,
		CorruptWriteProb: 0.2, CorruptReadProb: 0.2,
		StallEvery: 3, StallDur: time.Microsecond,
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	// Independent drain and feed goroutines: a synchronous echo would
	// deadlock against torn writes (both sides blocked mid-rendezvous).
	go io.Copy(io.Discard, b)
	go func() {
		for i := 0; i < 30; i++ {
			if _, err := b.Write([]byte("reply here")); err != nil {
				return
			}
		}
	}()
	fc := Wrap(a, sc, nil)
	tmp := make([]byte, 64)
	for i := 0; i < 30; i++ {
		fc.Write(frame(9, []byte("ping")))
		fc.Read(tmp)
	}
	var sum uint64
	for _, name := range CounterNames {
		sum += fc.Metrics().Counter(name).Value()
	}
	if sum != fc.Total() {
		t.Fatalf("counters sum to %d but Total() = %d", sum, fc.Total())
	}
	if sum == 0 {
		t.Fatal("mixed scenario injected nothing")
	}
}

// TestParseScenario round-trips a full spec and rejects bad ones.
func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("seed=42,jitter=2ms,jitterprob=0.5,shortwrite=0.3,shortread=0.25,corruptwrite=0.01,corruptread=0.02,killreq=500,killbytes=8192,stallevery=50,stalldur=100ms,server=true")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 42 || sc.Jitter != 2*time.Millisecond || sc.JitterProb != 0.5 ||
		sc.ShortWriteProb != 0.3 || sc.ShortReadProb != 0.25 ||
		sc.CorruptWriteProb != 0.01 || sc.CorruptReadProb != 0.02 ||
		sc.KillAfterRequests != 500 || sc.KillAfterBytes != 8192 ||
		sc.StallEvery != 50 || sc.StallDur != 100*time.Millisecond || !sc.ServerSide {
		t.Fatalf("parsed scenario wrong: %+v", sc)
	}
	if !sc.Active() {
		t.Fatal("parsed scenario should be active")
	}
	if sc2, err := ParseScenario("jitter=1ms"); err != nil || sc2.JitterProb != 1 {
		t.Fatalf("jitterprob should default to 1: %+v, %v", sc2, err)
	}
	for _, bad := range []string{"bogus=1", "shortwrite=1.5", "jitter", "seed=abc"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) should fail", bad)
		}
	}
	if (Scenario{}).Active() {
		t.Fatal("zero scenario should be inactive")
	}
}
