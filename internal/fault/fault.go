// Package fault is a deterministic fault-injection layer for the
// simulated X protocol: a net.Conn wrapper that sits under xclient or
// xserver exactly where the xtrace tap does, and perturbs the byte
// stream according to a seeded Scenario — latency jitter, short
// (partial) writes, short reads, corrupted bytes, truncated frames,
// connection kills after N requests or bytes, and one-way read stalls.
//
// Gunther's "The X-Files" observation motivates it: real X deployments
// live and die by how the protocol behaves under latency, loss and
// stalled peers, so the layers above (xclient's read loop and cookies,
// xserver's writer, tk's send) must degrade into clean Go errors — not
// hangs or panics. The chaos harness (chaos_test.go at the repository
// root, `make chaos`) drives a real widget workload through a matrix of
// scenarios built on this package and asserts exactly that.
//
// Every injected fault increments a named counter in the wrapper's
// metrics registry (fault.jitter, fault.short_write, ...) and a running
// total, so a harness can verify the counters account for 100% of the
// injected faults. All randomness comes from two rand.Rand streams
// (one per direction) seeded from Scenario.Seed, so a scenario replays
// byte-for-byte the same decisions on every run.
package fault

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Counter names recorded in the wrapper's registry, one per fault kind.
const (
	CtrJitter       = "fault.jitter"
	CtrShortWrite   = "fault.short_write"
	CtrShortRead    = "fault.short_read"
	CtrCorruptWrite = "fault.corrupt_write"
	CtrCorruptRead  = "fault.corrupt_read"
	CtrStall        = "fault.stall"
	CtrKill         = "fault.kill"
)

// CounterNames lists every per-fault counter name; the chaos harness
// sums these and checks the sum against Total().
var CounterNames = []string{
	CtrJitter, CtrShortWrite, CtrShortRead,
	CtrCorruptWrite, CtrCorruptRead, CtrStall, CtrKill,
}

// Conn wraps a net.Conn, injecting the faults its Scenario describes.
// Reads are expected on one goroutine (the client read loop) and writes
// on another (under the client's send lock); each direction has its own
// lock and random stream, so concurrent Read/Write pairs stay
// deterministic per direction.
type Conn struct {
	net.Conn
	sc Scenario

	metrics *obs.Registry
	total   atomic.Uint64 // every injected fault, all kinds
	killed  atomic.Bool

	wmu      sync.Mutex
	wrng     *rand.Rand // guarded by wmu
	written  int64      // guarded by wmu — payload bytes delivered downstream
	frames   int64      // guarded by wmu — complete frames seen crossing the write direction
	frameRem int64      // guarded by wmu — bytes left in the frame being scanned
	hdr      []byte     // guarded by wmu — partial frame header under scan

	rmu    sync.Mutex
	rrng   *rand.Rand // guarded by rmu
	reads  int64      // guarded by rmu
	stalls int64      // guarded by rmu
}

// Wrap layers a fault-injecting connection over c. If m is nil a fresh
// registry is created; either way it is reachable via Metrics.
func Wrap(c net.Conn, sc Scenario, m *obs.Registry) *Conn {
	if m == nil {
		m = obs.NewRegistry()
	}
	return &Conn{
		Conn:    c,
		sc:      sc,
		metrics: m,
		wrng:    rand.New(rand.NewSource(sc.Seed)),
		rrng:    rand.New(rand.NewSource(sc.Seed + 1)),
	}
}

// Metrics returns the registry holding the fault.* counters.
func (c *Conn) Metrics() *obs.Registry { return c.metrics }

// Total reports how many faults have been injected so far, across all
// kinds. The per-kind counters in Metrics always sum to this value.
func (c *Conn) Total() uint64 { return c.total.Load() }

// inject records one injected fault of the named kind.
func (c *Conn) inject(name string) {
	c.metrics.Counter(name).Inc()
	c.total.Add(1)
}

// errKilled is returned for I/O after the scenario killed the
// connection.
type errKilled struct{ sc string }

func (e errKilled) Error() string {
	return fmt.Sprintf("fault: connection killed by scenario %q", e.sc)
}

// kill closes the underlying connection (both directions die, as a
// crashed peer's would).
func (c *Conn) kill() {
	if c.killed.CompareAndSwap(false, true) {
		c.inject(CtrKill)
		c.Conn.Close()
	}
}

// Killed reports whether the scenario has killed the connection.
func (c *Conn) Killed() bool { return c.killed.Load() }

// maybeJitter sleeps a random duration in [0, Jitter) with probability
// JitterProb. rng is the direction's stream; the caller holds that
// direction's lock.
func (c *Conn) maybeJitter(rng *rand.Rand) {
	if c.sc.Jitter <= 0 || !chance(rng, c.sc.JitterProb) {
		return
	}
	c.inject(CtrJitter)
	time.Sleep(time.Duration(rng.Int63n(int64(c.sc.Jitter))))
}

func chance(rng *rand.Rand, p float64) bool {
	return p > 0 && rng.Float64() < p
}

// Write delivers p downstream, possibly split, corrupted, or truncated
// by a connection kill. On success it always reports len(p) written —
// a short *wire* write is an internal matter, as it is for TCP.
func (c *Conn) Write(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, errKilled{c.sc.Name}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.maybeJitter(c.wrng)

	buf := p
	if chance(c.wrng, c.sc.CorruptWriteProb) && len(p) > 0 {
		c.inject(CtrCorruptWrite)
		buf = append([]byte(nil), p...)
		buf[c.wrng.Intn(len(buf))] ^= 1 << uint(c.wrng.Intn(8))
	}

	// Connection kill after N bytes: deliver the allowed prefix (a
	// truncated frame, most of the time) and close.
	if c.sc.KillAfterBytes > 0 && c.written+int64(len(buf)) > c.sc.KillAfterBytes {
		keep := c.sc.KillAfterBytes - c.written
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			c.Conn.Write(buf[:keep])
			c.written += keep
		}
		c.kill()
		return int(keep), errKilled{c.sc.Name}
	}

	// Count request frames crossing this direction so KillAfterRequests
	// can trigger on a request boundary.
	c.scanFrames(buf)
	if c.sc.KillAfterRequests > 0 && c.frames >= int64(c.sc.KillAfterRequests) {
		c.kill()
		return 0, errKilled{c.sc.Name}
	}

	if chance(c.wrng, c.sc.ShortWriteProb) && len(buf) > 1 {
		// Tear the buffer: two separate wire writes, so the peer sees a
		// segment boundary in the middle of a frame.
		c.inject(CtrShortWrite)
		cut := 1 + c.wrng.Intn(len(buf)-1)
		if _, err := c.Conn.Write(buf[:cut]); err != nil {
			return 0, err
		}
		c.written += int64(cut)
		n, err := c.Conn.Write(buf[cut:])
		c.written += int64(n)
		if err != nil {
			return cut + n, err
		}
		return len(p), nil
	}

	n, err := c.Conn.Write(buf)
	c.written += int64(n)
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// scanFrames advances the request-frame scanner over the outgoing
// bytes: frames are [header hdrBytes][u32 len][payload]. Called with
// c.wmu held. Framing follows xproto: client→server headers are 2
// bytes (the opcode), server→client 1 byte (the kind); headerBytes
// selects which.
func (c *Conn) scanFrames(p []byte) {
	if c.sc.KillAfterRequests <= 0 {
		return
	}
	hdrLen := int64(c.sc.headerBytes()) + 4
	for len(p) > 0 {
		if c.frameRem > 0 {
			skip := c.frameRem
			if int64(len(p)) < skip {
				skip = int64(len(p))
			}
			c.frameRem -= skip
			p = p[skip:]
			if c.frameRem == 0 {
				c.frames++
			}
			continue
		}
		c.hdr = append(c.hdr, p...)
		if int64(len(c.hdr)) < hdrLen {
			return
		}
		n := int64(c.hdr[hdrLen-4])<<24 | int64(c.hdr[hdrLen-3])<<16 |
			int64(c.hdr[hdrLen-2])<<8 | int64(c.hdr[hdrLen-1])
		p = c.hdr[hdrLen:]
		c.hdr = nil
		c.frameRem = n
		if n == 0 {
			c.frames++
		}
	}
}

// Read fills p from the underlying connection, possibly stalled,
// shortened, or corrupted.
func (c *Conn) Read(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, errKilled{c.sc.Name}
	}
	c.rmu.Lock()
	c.reads++
	stall := c.sc.StallEvery > 0 && c.sc.StallDur > 0 && c.reads%int64(c.sc.StallEvery) == 0
	short := chance(c.rrng, c.sc.ShortReadProb) && len(p) > 1
	var shortTo int
	if short {
		shortTo = 1 + c.rrng.Intn(len(p)-1)
	}
	corrupt := chance(c.rrng, c.sc.CorruptReadProb)
	var corruptAt int64
	if corrupt {
		corruptAt = c.rrng.Int63()
	}
	c.maybeJitter(c.rrng)
	c.rmu.Unlock()

	if stall {
		// A one-way stall: the reading side goes quiet while the writer
		// keeps going — the "wedged peer" shape of the X-Files paper.
		c.inject(CtrStall)
		time.Sleep(c.sc.StallDur)
	}
	if short {
		c.inject(CtrShortRead)
		p = p[:shortTo]
	}
	n, err := c.Conn.Read(p)
	if corrupt && n > 0 {
		c.inject(CtrCorruptRead)
		p[corruptAt%int64(n)] ^= 1 << uint(corruptAt%8)
	}
	return n, err
}
