// Pipelining benchmarks: the XCB-style cookie model against serial
// round trips, under both simulated-latency accounting models. The
// gated emitter writes BENCH_pipeline.json, the artifact the
// EXPERIMENTS.md §3.3 follow-on table points at.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// BenchmarkPipelinedRoundTrips measures k Ping round trips per
// iteration with k requests in flight at once, at 1 ms of simulated IPC
// latency charged per wire segment. With the cookie model the k=8 and
// k=64 variants pay the latency once per batch, not once per request.
// The +spans variant runs with 1-in-64 request-span sampling on both
// sides; comparing it against the untraced k=64 run shows the tracing
// overhead (TestEmitSLOBench gates on < 5%).
func BenchmarkPipelinedRoundTrips(b *testing.B) {
	for _, bc := range []struct {
		name  string
		k     int
		spans bool
	}{
		{"inflight=1", 1, false},
		{"inflight=8", 8, false},
		{"inflight=64", 64, false},
		{"inflight=64+spans", 64, true},
	} {
		k := bc.k
		b.Run(bc.name, func(b *testing.B) {
			app, err := core.NewApp(core.Options{Name: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			defer app.Close()
			app.Server.SetLatency(time.Millisecond)
			app.Server.SetLatencyModel(xserver.LatencyPerSegment)
			if bc.spans {
				tr := trace.New(8192, trace.DefaultInterval)
				app.Server.SetTracer(tr)
				app.Disp.SetTracer(tr)
			}
			defer func() {
				app.Server.SetLatency(0)
				app.Server.SetLatencyModel(xserver.LatencyPerRequest)
			}()
			cookies := make([]*xclient.Cookie, k)
			// The reply path is pooled end to end; allocs/op here is the
			// regression canary for it (see BENCH_mtserver.json).
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					cookies[j] = app.Disp.SendWithReply(&xproto.PingReq{})
				}
				for j := 0; j < k; j++ {
					if err := cookies[j].Wait(nil); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			// Per-round-trip cost, so the three variants compare directly.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/rtt")
		})
	}
}

// TestEmitPipelineBench measures serial vs pipelined round trips and
// cold widget creation under both latency models and writes
// BENCH_pipeline.json. It doubles as the acceptance check (make check
// runs it with OBS_BENCH=1): 8 pipelined round trips at 1 ms under the
// per-segment model must beat 8 serial ones by at least 4×.
func TestEmitPipelineBench(t *testing.T) {
	requireObsBench(t, "BENCH_pipeline.json")

	// --- Round trips: 8 serial vs 8 pipelined, 1 ms, both models. ----
	const flight = 8
	const lat = time.Millisecond
	const reps = 5
	measureRTT := func(model xserver.LatencyModel, pipelined bool) time.Duration {
		app, err := core.NewApp(core.Options{Name: "pipebench"})
		if err != nil {
			t.Fatal(err)
		}
		defer app.Close()
		app.Server.SetLatency(lat)
		app.Server.SetLatencyModel(model)
		return minDuration(reps, func() time.Duration {
			start := time.Now()
			if pipelined {
				cookies := make([]*xclient.Cookie, flight)
				for j := range cookies {
					cookies[j] = app.Disp.SendWithReply(&xproto.PingReq{})
				}
				for _, ck := range cookies {
					if err := ck.Wait(nil); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				for j := 0; j < flight; j++ {
					if err := app.Disp.Sync(); err != nil {
						t.Fatal(err)
					}
				}
			}
			return time.Since(start)
		})
	}
	rtt := map[string]time.Duration{
		"per_request_serial":    measureRTT(xserver.LatencyPerRequest, false),
		"per_request_pipelined": measureRTT(xserver.LatencyPerRequest, true),
		"per_segment_serial":    measureRTT(xserver.LatencyPerSegment, false),
		"per_segment_pipelined": measureRTT(xserver.LatencyPerSegment, true),
	}

	// Acceptance: under the per-segment model, pipelining 8 requests is
	// ≥ 4× faster than 8 serial round trips.
	if rtt["per_segment_pipelined"]*4 > rtt["per_segment_serial"] {
		t.Fatalf("pipelined %v vs serial %v: want ≥ 4× speedup under per-segment model",
			rtt["per_segment_pipelined"], rtt["per_segment_serial"])
	}

	// Under the per-request model the two MUST be close: the server
	// sleeps once per request however the requests are framed, so
	// pipelining changes nothing (docs/pipelining.md, "Why only the
	// per-segment model shows the win"). If these drift apart, the
	// latency-model accounting itself regressed — flag it.
	prs, prp := rtt["per_request_serial"], rtt["per_request_pipelined"]
	if prp*3 < prs*2 || prs*3 < prp*2 {
		t.Fatalf("per-request model: pipelined %v vs serial %v drifted beyond 1.5x; "+
			"per-request latency must be framing-independent", prp, prs)
	}

	// --- Cold widget creation at 0/1/5 ms under both models. ---------
	// A fresh app per run keeps the resource caches cold, so the
	// prefetch batch actually has allocations to pipeline.
	measureWidgets := func(model xserver.LatencyModel, wlat time.Duration) time.Duration {
		return minDuration(3, func() time.Duration {
			app, err := core.NewApp(core.Options{Name: "pipebench"})
			if err != nil {
				t.Fatal(err)
			}
			defer app.Close()
			app.Server.SetLatency(wlat)
			app.Server.SetLatencyModel(model)
			start := time.Now()
			app.MustEval(`frame .f`)
			app.MustEval(`pack append . .f {top}`)
			for _, s := range []string{"a", "b", "c", "d", "e"} {
				app.MustEval(`button .f.` + s + ` -text ` + s + ` -foreground red`)
				app.MustEval(`pack append .f .f.` + s + ` {top}`)
			}
			app.Update()
			app.MustEval(`.f.a configure -background SteelBlue -foreground NavyBlue`)
			app.Update()
			return time.Since(start)
		})
	}
	widgets := make(map[string]time.Duration)
	for _, m := range []struct {
		name  string
		model xserver.LatencyModel
	}{
		{"per_request", xserver.LatencyPerRequest},
		{"per_segment", xserver.LatencyPerSegment},
	} {
		for _, wlat := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
			widgets[fmt.Sprintf("%s_lat%s", m.name, wlat)] = measureWidgets(m.model, wlat)
		}
	}

	toNs := func(m map[string]time.Duration) map[string]int64 {
		out := make(map[string]int64, len(m))
		for k, v := range m {
			out[k] = v.Nanoseconds()
		}
		return out
	}
	out := struct {
		Flight     int              `json:"round_trips_in_flight"`
		LatencyNs  int64            `json:"round_trip_latency_ns"`
		RoundTrips map[string]int64 `json:"round_trips_ns"`
		Widgets    map[string]int64 `json:"widget_creation_ns"`
	}{
		Flight:     flight,
		LatencyNs:  int64(lat),
		RoundTrips: toNs(rtt),
		Widgets:    toNs(widgets),
	}
	writeBenchJSON(t, "BENCH_pipeline.json", out)
	t.Logf("wrote BENCH_pipeline.json: per-segment serial %v, pipelined %v (%.1fx)",
		rtt["per_segment_serial"], rtt["per_segment_pipelined"],
		float64(rtt["per_segment_serial"])/float64(rtt["per_segment_pipelined"]))
}
