// Render-pipeline benchmarks: a PolyFillRectangle/PolyText8 storm
// against the tiled damage-tracked renderer, compared to the seed's
// flat per-pixel renderer preserved in internal/flatimg, plus the
// screenshot-concurrency column: how much painter throughput survives
// while other connections continuously export composited screenshots.
// The gated emitter writes BENCH_render.json, the artifact the
// EXPERIMENTS.md render table points at.
package repro_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flatimg"
	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

const stormW, stormH = 1024, 768

// stormRects is a deterministic 64-rect storm modeled on a Tk repaint:
// eight full-width bands (frame backgrounds and reliefs) plus a grid
// of widget-scale fills, offset so several rects clip against every
// edge of the drawable.
func stormRects() []xproto.Rect {
	rects := make([]xproto.Rect, 0, 64)
	for i := 0; i < 8; i++ {
		rects = append(rects, xproto.Rect{X: -16, Y: int16(i*96 - 8), W: stormW + 32, H: 88})
	}
	for i := 0; i < 56; i++ {
		x := (i%8)*144 - 40
		y := (i/8)*104 - 24
		rects = append(rects, xproto.Rect{X: int16(x), Y: int16(y), W: 256, H: 128})
	}
	return rects
}

// stormScroll is the per-round scroll step: the region and upward
// shift of the overlapping self-CopyArea, a text-widget scroll.
const (
	scrollH     = 640
	scrollShift = 48
)

// stormPixels is the pixel area actually painted by one pass over the
// storm — clipped fill area plus the scrolled region — the denominator
// for pixels/second.
func stormPixels() int {
	total := stormW * scrollH // scroll step
	for _, r := range stormRects() {
		x0, y0 := max(int(r.X), 0), max(int(r.Y), 0)
		x1, y1 := min(int(r.X)+int(r.W), stormW), min(int(r.Y)+int(r.H), stormH)
		if x1 > x0 && y1 > y0 {
			total += (x1 - x0) * (y1 - y0)
		}
	}
	return total
}

var stormText = strings.Repeat("wish% pack .b -side top ", 2)

// flatStormRound paints one storm round with the seed renderer: the
// pre-PR per-pixel fill, copy and glyph loops, called directly with no
// protocol in the way (which biases the comparison in its favor).
func flatStormRound(im *flatimg.Image, rects []xproto.Rect) {
	for _, r := range rects {
		im.FillRect(int(r.X), int(r.Y), int(r.W), int(r.H), 0x336699)
	}
	im.CopyFrom(im, 0, scrollShift, 0, 0, stormW, scrollH)
	for i := 0; i < 8; i++ {
		im.DrawString(8, 40+i*80, stormText, 0xffffff, 1)
	}
}

// tiledStormRound pushes the same storm through the server: one
// batched PolyFillRectangle, one scrolling self-CopyArea, eight
// PolyText8 requests, one sync.
func tiledStormRound(d *xclient.Display, win, gc xproto.ID, rects []xproto.Rect) error {
	d.FillRectangles(win, gc, rects)
	d.CopyArea(win, win, gc, 0, scrollShift, 0, 0, stormW, scrollH)
	for i := 0; i < 8; i++ {
		d.DrawString(win, gc, 8, 40+i*80, stormText)
	}
	return d.Sync()
}

// stormClient opens a display with a storm-sized mapped window and a GC.
func stormClient(tb testing.TB, s *xserver.Server, x int) (*xclient.Display, xproto.ID, xproto.ID) {
	d, err := xclient.Open(s.ConnectPipe())
	if err != nil {
		tb.Fatal(err)
	}
	win := d.CreateWindow(d.Root, x, 0, stormW, stormH, 1, xclient.WindowAttributes{Background: 0x202020})
	d.MapWindow(win)
	gc := d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground, Foreground: 0x336699})
	if err := d.Sync(); err != nil {
		tb.Fatal(err)
	}
	return d, win, gc
}

// BenchmarkRenderStorm measures the full client-to-framebuffer cost of
// one storm round against the tiled renderer. Run with -benchmem: the
// interesting numbers are MPx/s and that allocs/op stays flat — the
// fill path allocates nothing per rect.
func BenchmarkRenderStorm(b *testing.B) {
	s := xserver.New(stormW, stormH)
	defer s.Close()
	d, win, gc := stormClient(b, s, 0)
	defer d.Close()
	rects := stormRects()
	px := stormPixels()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tiledStormRound(d, win, gc, rects); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(px)*float64(b.N)/1e6/b.Elapsed().Seconds(), "MPx/s")
}

// TestEmitRenderBench times the storm against both renderers, measures
// how much painter throughput survives concurrent screenshot export,
// and writes BENCH_render.json. It doubles as the acceptance check
// (make check runs it with OBS_BENCH=1): the tiled pipeline must be
// ≥ 3x the seed flat renderer on the storm — even though the tiled
// side pays for the full client/server protocol round and the flat
// baseline is called directly — and painters must keep ≥ half their
// throughput while screenshot readers hammer the composite path, which
// the old hold-treeMu-for-the-whole-render screenshot made impossible.
func TestEmitRenderBench(t *testing.T) {
	requireObsBench(t, "BENCH_render.json")

	const rounds = 10
	const reps = 3
	rects := stormRects()
	px := stormPixels()

	// Seed flat renderer, direct calls.
	flat := flatimg.New(stormW, stormH)
	flatStormRound(flat, rects) // warm
	flatBest := minDuration(reps, func() time.Duration {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			flatStormRound(flat, rects)
		}
		return time.Since(start)
	})

	// Tiled renderer, full protocol round per storm.
	s := xserver.New(stormW, stormH)
	defer s.Close()
	d, win, gc := stormClient(t, s, 0)
	defer d.Close()
	if err := tiledStormRound(d, win, gc, rects); err != nil { // warm
		t.Fatal(err)
	}
	tiledBest := minDuration(reps, func() time.Duration {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := tiledStormRound(d, win, gc, rects); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	})

	speedup := float64(flatBest) / float64(tiledBest)
	if speedup < 3 {
		t.Fatalf("tiled storm %.2fms vs flat %.2fms per %d rounds (%.2fx): want ≥ 3x",
			float64(tiledBest)/1e6, float64(flatBest)/1e6, rounds, speedup)
	}

	// Screenshot-concurrency column: two painters alone, then the same
	// painters with two connections exporting root screenshots at a
	// live-capture pace (~15 fps each). The plan/replay split means a
	// reader holds treeMu only for the snapshot walk, so painters keep
	// nearly all their throughput; the seed held the lock across the
	// whole compose-and-pack, stalling painters for milliseconds per
	// frame. The readers are paced, not free-running, so the column
	// measures lock stalls rather than raw CPU sharing on small hosts.
	painterRounds := func(withReaders bool) float64 {
		const painters = 2
		const proundsEach = 75
		ds := make([]*xclient.Display, painters)
		wins := make([]xproto.ID, painters)
		gcs := make([]xproto.ID, painters)
		for i := range ds {
			ds[i], wins[i], gcs[i] = stormClient(t, s, i*64)
		}
		defer func() {
			for _, pd := range ds {
				pd.Close()
			}
		}()

		stop := make(chan struct{})
		var readers sync.WaitGroup
		if withReaders {
			for r := 0; r < 2; r++ {
				rd, err := xclient.Open(s.ConnectPipe())
				if err != nil {
					t.Fatal(err)
				}
				readers.Add(1)
				go func(rd *xclient.Display) {
					defer readers.Done()
					defer rd.Close()
					tick := time.NewTicker(66 * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-stop:
							return
						case <-tick.C:
						}
						if _, err := rd.Screenshot(xproto.None); err != nil {
							t.Error(err)
							return
						}
					}
				}(rd)
			}
		}

		var wg sync.WaitGroup
		start := time.Now()
		for i := range ds {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for n := 0; n < proundsEach; n++ {
					if err := tiledStormRound(ds[i], wins[i], gcs[i], rects); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		close(stop)
		readers.Wait()
		return float64(painters*proundsEach) / wall.Seconds()
	}

	alone := painterRounds(false)
	contended := painterRounds(true)
	ratio := contended / alone
	if ratio < 0.5 {
		t.Fatalf("painter throughput under concurrent screenshots: %.1f vs %.1f rounds/s alone (ratio %.2f): want ≥ 0.5 — screenshots are stalling painters",
			contended, alone, ratio)
	}

	counters := map[string]uint64{}
	for _, name := range []string{"render.tiles.damaged", "render.tiles.cow", "render.tiles.snapshot", "render.fill.parallel"} {
		counters[name] = s.Metrics().Counter(name).Value()
	}

	out := struct {
		StormRects      int               `json:"storm_rects"`
		StormPx         int               `json:"storm_clipped_px"`
		FlatNsPerRound  int64             `json:"flat_ns_per_round"`
		TiledNsPerRound int64             `json:"tiled_ns_per_round"`
		FlatMPxPerSec   float64           `json:"flat_mpx_per_sec"`
		TiledMPxPerSec  float64           `json:"tiled_mpx_per_sec"`
		Speedup         float64           `json:"storm_speedup_tiled_vs_flat"`
		PainterAlone    float64           `json:"painter_rounds_per_sec_alone"`
		PainterShots    float64           `json:"painter_rounds_per_sec_with_screenshots"`
		ConcurrencyKeep float64           `json:"painter_throughput_kept_under_screenshots"`
		Counters        map[string]uint64 `json:"render_counters"`
	}{
		StormRects:      len(rects),
		StormPx:         px,
		FlatNsPerRound:  flatBest.Nanoseconds() / rounds,
		TiledNsPerRound: tiledBest.Nanoseconds() / rounds,
		FlatMPxPerSec:   float64(px) * rounds / 1e6 / flatBest.Seconds(),
		TiledMPxPerSec:  float64(px) * rounds / 1e6 / tiledBest.Seconds(),
		Speedup:         speedup,
		PainterAlone:    alone,
		PainterShots:    contended,
		ConcurrencyKeep: ratio,
		Counters:        counters,
	}
	writeBenchJSON(t, "BENCH_render.json", out)
	t.Logf("wrote BENCH_render.json: storm %.2fx vs flat renderer (%.0f vs %.0f MPx/s), %.0f%% painter throughput kept under screenshots",
		speedup, out.TiledMPxPerSec, out.FlatMPxPerSec, ratio*100)
}
